// Package service is the embeddable core of potsimd: a crash-tolerant
// job service that runs simulations and experiment suites from
// HTTP/JSON submissions. It provides bounded admission (explicit queue
// depth and per-tenant in-flight caps, rejected work is told to retry
// later rather than silently buffered), per-job watchdogs and panic
// containment via internal/batch, a content-addressed result cache with
// single-flight deduplication, per-epoch progress streaming over SSE,
// and drain-safe shutdown: on SIGTERM the server stops admitting,
// checkpoints running jobs through the internal/checkpoint machinery,
// and a restart on the same data directory resumes every unfinished job
// to a byte-identical result.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"potsim/internal/batch"
	"potsim/internal/checkpoint"
	"potsim/internal/core"
	"potsim/internal/expt"
	"potsim/internal/sim"
)

// Admission errors. The HTTP layer maps these to 429/503 with a
// Retry-After hint; everything else from Submit is a client error.
var (
	// ErrQueueFull rejects a submission because the bounded queue is at
	// capacity. The job was not admitted; retry after a backoff.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrTenantLimit rejects a submission because the tenant already has
	// its maximum number of jobs queued or running.
	ErrTenantLimit = errors.New("service: tenant in-flight limit reached")
	// ErrDraining rejects a submission because the server is shutting
	// down and no longer admits work.
	ErrDraining = errors.New("service: server is draining")
	// ErrUnknownJob is returned for job IDs the server has never seen.
	ErrUnknownJob = errors.New("service: unknown job")
)

// Persistence envelope kinds/versions (see internal/checkpoint): every
// durable record the daemon writes is checksummed and written
// atomically, so a crash mid-write can corrupt nothing and torn files
// are detected, not misread.
const (
	jobKind         = "potsimd-job"
	jobVersion      = 1
	resultKind      = "potsimd-result"
	resultVersion   = 1
	failedKind      = "potsimd-failed"
	failedVersion   = 1
	canceledKind    = "potsimd-canceled"
	canceledVersion = 1
)

// jobRecord is the durable identity of an admitted job. Its presence
// without a result/failed/canceled marker is what makes a restart
// re-enqueue the job.
type jobRecord struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	Fingerprint string  `json:"fingerprint"`
	Spec        JobSpec `json:"spec"`
}

type failedRecord struct {
	Error string `json:"error"`
}

type canceledRecord struct {
	Reason string `json:"reason"`
}

// Config configures a Server. The zero value is usable: every knob has
// a production-shaped default.
type Config struct {
	// DataDir roots all durable state (jobs/<id>/ and cache/). Empty
	// disables durability and the result cache survives only in memory —
	// tests use that; potsimd always sets it.
	DataDir string

	// QueueDepth bounds jobs admitted but not yet running; a full queue
	// rejects with ErrQueueFull instead of buffering without limit.
	// Default 16.
	QueueDepth int
	// JobWorkers is the number of jobs executed concurrently. Default 2.
	JobWorkers int
	// MaxPerTenant caps one tenant's queued+running jobs. Default 4;
	// negative disables the cap.
	MaxPerTenant int

	// CellWorkers bounds intra-suite cell parallelism (expt.Runner
	// Workers); <= 0 means GOMAXPROCS.
	CellWorkers int
	// Shards is the per-simulation epoch shard count, forwarded to both
	// job kinds. Result-neutral by the determinism contract.
	Shards int
	// CheckpointEvery is the snapshot cadence in epochs for running
	// jobs. 0 selects the default (200); negative disables periodic
	// snapshots (drain checkpoints still happen via RequestStop).
	CheckpointEvery int64
	// CellTimeout, when positive, is the per-attempt watchdog: whole sim
	// jobs and individual suite cells that overrun it fail with a
	// batch.TimeoutError.
	CellTimeout time.Duration
	// Retries and RetryBackoff configure the batch retry budget.
	Retries      int
	RetryBackoff time.Duration

	// RetryAfter is the hint handed to rejected clients. Default 1s.
	RetryAfter time.Duration
	// SubscriberBuffer is the per-SSE-subscriber event buffer. Default
	// 128; a reader that falls further behind loses progress granularity
	// and, if it stalls outright, the stream.
	SubscriberBuffer int

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.MaxPerTenant == 0 {
		c.MaxPerTenant = 4
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 200
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0 // core: 0 = snapshot only on RequestStop
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 128
	}
}

// Stats is the server's counter snapshot, served by /v1/stats. All
// counters are monotone within one process lifetime except the gauges
// (Queued, Running, Draining).
type Stats struct {
	Queued     int  `json:"queued"`
	Running    int  `json:"running"`
	Draining   bool `json:"draining"`
	QueueDepth int  `json:"queueDepth"`
	JobWorkers int  `json:"jobWorkers"`

	Submitted int `json:"submitted"`
	Deduped   int `json:"deduped"`
	CacheHits int `json:"cacheHits"`
	// CacheIndexHits counts cache hits answered via the segment-backed
	// fingerprint index (DataDir mode) rather than a blind disk probe.
	CacheIndexHits int `json:"cacheIndexHits"`
	Completed      int `json:"completed"`
	Failed         int `json:"failed"`
	Canceled       int `json:"canceled"`
	Interrupted    int `json:"interrupted"`
	Recovered      int `json:"recovered"`

	RejectedQueueFull int `json:"rejectedQueueFull"`
	RejectedTenant    int `json:"rejectedTenant"`
	RejectedDraining  int `json:"rejectedDraining"`
	RejectedInvalid   int `json:"rejectedInvalid"`

	// GuardViolations accumulates over completed jobs' reports.
	GuardViolations int `json:"guardViolations"`

	Tenants map[string]int `json:"tenants,omitempty"`
}

// Server runs jobs. Create with New, stop with Drain.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in admission order
	inflight map[string]*Job // fingerprint -> queued/running job (single-flight)
	tenants  map[string]int  // tenant -> queued+running jobs
	seq      int
	queued   int
	running  int
	draining bool
	stats    Stats

	memCache map[string][]byte // fingerprint -> result doc, DataDir == "" only
	idx      *cacheIndex       // segment-backed cache index, DataDir != "" only

	queue     chan *Job
	drainCh   chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a server, recovers every unfinished job found in
// cfg.DataDir (stale temp files are swept, finished jobs come back as
// cache entries, unfinished ones are re-enqueued in admission order),
// and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		tenants:  make(map[string]int),
		drainCh:  make(chan struct{}),
	}
	if cfg.DataDir != "" {
		for _, sub := range []string{s.jobsDir(), s.cacheDir()} {
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return nil, fmt.Errorf("service: creating data dir: %w", err)
			}
		}
		idx, err := openCacheIndex(s.indexDir(), s.logf)
		if err != nil {
			return nil, fmt.Errorf("service: opening cache index: %w", err)
		}
		s.idx = idx
	}
	recovered, err := s.recoverJobs()
	if err != nil {
		return nil, err
	}
	if s.idx != nil {
		// After recovery: repairCache may just have re-created cache
		// entries the index never saw (crash between the two writes).
		s.idx.reconcile(s.cacheDir())
	}
	// The channel is sized so that sends under the admission invariant
	// (queued < QueueDepth, plus the recovered backlog) never block.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, job := range recovered {
		s.queued++
		s.queue <- job
	}
	s.wg.Add(cfg.JobWorkers)
	for i := 0; i < cfg.JobWorkers; i++ {
		go s.worker()
	}
	return s, nil
}

func (s *Server) jobsDir() string  { return filepath.Join(s.cfg.DataDir, "jobs") }
func (s *Server) cacheDir() string { return filepath.Join(s.cfg.DataDir, "cache") }
func (s *Server) indexDir() string { return filepath.Join(s.cfg.DataDir, "cache-index") }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// recoverJobs scans the jobs directory and rebuilds in-memory state:
// finished jobs are reloaded (and their cache entries repaired if the
// crash hit between the result and cache writes), canceled/failed jobs
// keep their terminal state, and everything else — killed at whatever
// point — is re-enqueued to resume from its journal and snapshots.
func (s *Server) recoverJobs() ([]*Job, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("service: scanning jobs dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	// Job IDs are zero-padded sequence numbers: lexical order is
	// admission order, so recovery re-enqueues in the original order.
	sort.Strings(names)

	var requeue []*Job
	for _, name := range names {
		dir := filepath.Join(s.jobsDir(), name)
		var rec jobRecord
		if err := checkpoint.Load(filepath.Join(dir, "job.json"), jobKind, jobVersion, &rec); err != nil {
			s.logf("recovery: skipping %s: %v", name, err)
			continue
		}
		job := &Job{
			ID:          rec.ID,
			Tenant:      rec.Tenant,
			Spec:        rec.Spec,
			Fingerprint: rec.Fingerprint,
			dir:         dir,
			broker:      newBroker(),
		}
		job.state = StateQueued
		if rec.Spec.Kind == KindSim {
			cfg, err := rec.Spec.SimConfig()
			if err != nil {
				s.logf("recovery: %s has an invalid config: %v", name, err)
				job.settle(StateFailed, nil, err.Error())
				s.adopt(job)
				continue
			}
			job.simCfg = cfg
		}
		if n := s.seqOf(rec.ID); n >= s.seq {
			s.seq = n + 1
		}

		var doc ResultDoc
		switch rerr := checkpoint.Load(filepath.Join(dir, "result.json"), resultKind, resultVersion, &doc); {
		case rerr == nil:
			blob, merr := json.Marshal(&doc)
			if merr != nil {
				return nil, merr
			}
			job.settle(StateDone, blob, "")
			s.stats.GuardViolations += doc.GuardViolations
			s.repairCache(job.Fingerprint, &doc)
			s.adopt(job)
			continue
		case !os.IsNotExist(rerr):
			s.logf("recovery: %s result unreadable: %v", name, rerr)
		}
		var frec failedRecord
		if err := checkpoint.Load(filepath.Join(dir, "failed.json"), failedKind, failedVersion, &frec); err == nil {
			job.settle(StateFailed, nil, frec.Error)
			s.adopt(job)
			continue
		}
		var crec canceledRecord
		if err := checkpoint.Load(filepath.Join(dir, "canceled.json"), canceledKind, canceledVersion, &crec); err == nil {
			job.settle(StateCanceled, nil, "")
			s.adopt(job)
			continue
		}

		// Unfinished: sweep temp droppings from interrupted atomic
		// writes, then put the job back in line.
		if removed, err := checkpoint.CleanTemps(dir); err == nil && len(removed) > 0 {
			s.logf("recovery: %s: removed stale temps %v", name, removed)
		}
		job.recovered = true
		s.adopt(job)
		s.inflight[job.Fingerprint] = job
		s.tenants[job.Tenant]++
		s.stats.Recovered++
		requeue = append(requeue, job)
	}
	return requeue, nil
}

// adopt registers a job in the maps. Only called before workers start
// or under s.mu.
func (s *Server) adopt(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

func (s *Server) seqOf(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%06d-", &n); err != nil {
		return -1
	}
	return n
}

// repairCache makes sure a finished job's result is present in the
// content-addressed cache (the crash may have hit between the two
// writes; the per-job result is authoritative).
func (s *Server) repairCache(fp string, doc *ResultDoc) {
	path := s.cachePath(fp)
	if path == "" {
		return
	}
	var have ResultDoc
	if err := checkpoint.Load(path, resultKind, resultVersion, &have); err == nil {
		return
	}
	if err := checkpoint.Save(path, resultKind, resultVersion, doc); err != nil {
		s.logf("cache repair for %s: %v", fp, err)
	} else if s.idx != nil {
		s.idx.add(fp, "", doc.Kind, doc.Experiment)
	}
}

func (s *Server) cachePath(fp string) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cacheDir(), fp+".json")
}

// SubmitOutcome reports how a submission was satisfied.
type SubmitOutcome struct {
	Job *Job
	// Deduped: an identical job was already queued or running; the
	// caller was attached to it instead of a new execution.
	Deduped bool
	// CacheHit: the result already existed in the content-addressed
	// cache; the returned job was born done.
	CacheHit bool
}

// Submit validates, fingerprints and admits a job. Identical in-flight
// work is deduplicated (single-flight), cached results are returned
// without execution, and overload is rejected with ErrQueueFull /
// ErrTenantLimit rather than buffered.
func (s *Server) Submit(spec JobSpec, tenant string) (SubmitOutcome, error) {
	if tenant == "" {
		tenant = "anon"
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		s.mu.Lock()
		s.stats.RejectedInvalid++
		s.mu.Unlock()
		return SubmitOutcome{}, err
	}

	s.mu.Lock()
	if s.draining {
		s.stats.RejectedDraining++
		s.mu.Unlock()
		return SubmitOutcome{}, ErrDraining
	}
	s.stats.Submitted++
	if j := s.inflight[fp]; j != nil {
		s.stats.Deduped++
		s.mu.Unlock()
		return SubmitOutcome{Job: j, Deduped: true}, nil
	}
	if doc, ok := s.loadCacheLocked(fp); ok {
		job := s.newCachedJobLocked(spec, tenant, fp, doc)
		s.stats.CacheHits++
		if s.idx != nil && s.idx.has(fp) {
			s.stats.CacheIndexHits++
		}
		s.mu.Unlock()
		return SubmitOutcome{Job: job, CacheHit: true}, nil
	}
	if s.queued >= s.cfg.QueueDepth {
		s.stats.RejectedQueueFull++
		s.mu.Unlock()
		return SubmitOutcome{}, ErrQueueFull
	}
	if s.cfg.MaxPerTenant > 0 && s.tenants[tenant] >= s.cfg.MaxPerTenant {
		s.stats.RejectedTenant++
		s.mu.Unlock()
		return SubmitOutcome{}, fmt.Errorf("%w (%d in flight for %q)", ErrTenantLimit, s.tenants[tenant], tenant)
	}

	job := &Job{
		ID:          fmt.Sprintf("j%06d-%s", s.seq, fp[:8]),
		Tenant:      tenant,
		Spec:        spec,
		Fingerprint: fp,
		broker:      newBroker(),
	}
	job.state = StateQueued
	if spec.Kind == KindSim {
		job.simCfg, _ = spec.SimConfig() // validated by Fingerprint
	}
	if s.cfg.DataDir != "" {
		job.dir = filepath.Join(s.jobsDir(), job.ID)
	}
	s.seq++
	s.queued++
	s.tenants[tenant]++
	s.inflight[fp] = job
	s.adopt(job)
	s.mu.Unlock()

	if job.dir != "" {
		if err := s.persistJob(job); err != nil {
			// Roll the reservation back: the job never existed.
			s.mu.Lock()
			s.queued--
			s.tenants[tenant]--
			delete(s.inflight, fp)
			delete(s.jobs, job.ID)
			if n := len(s.order); n > 0 && s.order[n-1] == job.ID {
				s.order = s.order[:n-1]
			}
			s.stats.Submitted--
			s.mu.Unlock()
			return SubmitOutcome{}, err
		}
	}
	job.broker.publish(Event{Type: EventState, JobID: job.ID, State: StateQueued})
	s.queue <- job // never blocks: see channel sizing in New
	return SubmitOutcome{Job: job}, nil
}

func (s *Server) persistJob(job *Job) error {
	if err := os.MkdirAll(job.dir, 0o755); err != nil {
		return fmt.Errorf("service: creating job dir: %w", err)
	}
	rec := jobRecord{ID: job.ID, Tenant: job.Tenant, Fingerprint: job.Fingerprint, Spec: job.Spec}
	if err := checkpoint.Save(filepath.Join(job.dir, "job.json"), jobKind, jobVersion, &rec); err != nil {
		return fmt.Errorf("service: persisting job: %w", err)
	}
	return nil
}

// newCachedJobLocked materialises a cache hit as a job that was born
// done: it gets an ID and shows up in listings, but owns no directory
// and never touches the queue. Called with s.mu held.
func (s *Server) newCachedJobLocked(spec JobSpec, tenant, fp string, doc []byte) *Job {
	job := &Job{
		ID:          fmt.Sprintf("j%06d-%s", s.seq, fp[:8]),
		Tenant:      tenant,
		Spec:        spec,
		Fingerprint: fp,
		broker:      newBroker(),
	}
	s.seq++
	job.state = StateQueued
	job.cached = true
	job.settle(StateDone, doc, "")
	s.adopt(job)
	return job
}

// loadCacheLocked reads the content-addressed cache. In-memory dedup of
// finished jobs is subsumed: completed jobs always write the cache file
// first (or, with no DataDir, an in-memory entry via memCache).
func (s *Server) loadCacheLocked(fp string) ([]byte, bool) {
	if s.cfg.DataDir == "" {
		doc, ok := s.memCache[fp]
		return doc, ok
	}
	// The segment index answers negative lookups from memory: every
	// cache write this server makes is indexed (and startup reconciles
	// the directory), so an unindexed fingerprint cannot have an entry
	// and the disk probe below is skipped.
	if s.idx != nil && !s.idx.has(fp) {
		return nil, false
	}
	var doc ResultDoc
	if err := checkpoint.Load(s.cachePath(fp), resultKind, resultVersion, &doc); err != nil {
		return nil, false
	}
	blob, err := json.Marshal(&doc)
	if err != nil {
		return nil, false
	}
	return blob, true
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in admission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Cancel aborts a job on behalf of the user. Queued jobs settle
// immediately; running jobs are context-canceled and settle when the
// simulation notices (next epoch boundary).
func (s *Server) Cancel(id string) error {
	job, ok := s.Job(id)
	if !ok {
		return ErrUnknownJob
	}
	if job.requestCancel() == cancelSettledNow {
		// Settled here (was queued): persist the marker so a restart
		// does not resurrect it, and free its admission slots.
		s.writeCanceled(job)
		s.countSettled(StateCanceled, nil)
		s.release(job)
	}
	// Already terminal or signaled to a running worker: nothing more to
	// do here; cancel is idempotent and the worker owns the settle.
	return nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queued
	st.Running = s.running
	st.Draining = s.draining
	st.QueueDepth = s.cfg.QueueDepth
	st.JobWorkers = s.cfg.JobWorkers
	st.Tenants = make(map[string]int, len(s.tenants))
	for t, n := range s.tenants {
		if n > 0 {
			st.Tenants[t] = n
		}
	}
	return st
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission, asks every running job to checkpoint and stop,
// waits for the workers to finish, and settles still-queued jobs as
// interrupted (their durable state makes a restart re-enqueue them).
// Returns ctx.Err() if the deadline expires first — the caller decides
// whether to exit anyway; durable state is consistent at every point.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	live := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j := s.jobs[id]; !j.State().terminal() {
			live = append(live, j)
		}
	}
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	for _, j := range live {
		j.requestSoftStop()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Workers are gone; anything not terminal was still queued. Its
	// job.json (and any snapshots) persist, so a restart resumes it.
	s.mu.Lock()
	var stranded []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; !j.State().terminal() {
			stranded = append(stranded, j)
		}
	}
	s.mu.Unlock()
	for _, j := range stranded {
		j.settle(StateInterrupted, nil, "")
		s.countSettled(StateInterrupted, nil)
	}
	return nil
}

// worker pulls jobs until drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCh:
			return
		case job := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			select {
			case <-s.drainCh:
				// Draining: leave the job durable on disk; Drain settles
				// its in-memory state as interrupted.
				return
			default:
			}
			s.runJob(job)
		}
	}
}

// runJob executes one job with watchdog, retry and panic containment
// from internal/batch, then settles it. Every terminal state leaves the
// matching durable marker so restarts never redo settled work.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !job.setRunning(cancel) {
		// Canceled while queued; Cancel already settled and released it.
		return
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	opts := batch.Options{}
	if job.Spec.Kind == KindSim {
		// Sim jobs are one attempt unit: the watchdog bounds the whole
		// run and a retry resumes from the latest snapshot.
		opts.CellTimeout = s.cfg.CellTimeout
		opts.Retries = s.cfg.Retries
		opts.RetryBackoff = s.cfg.RetryBackoff
	}
	doc, err := batch.Run(ctx, opts, func(ctx context.Context) (ResultDoc, error) {
		if job.Spec.Kind == KindSim {
			return s.runSim(ctx, job)
		}
		return s.runSuite(ctx, job)
	})

	switch {
	case err == nil:
		blob, merr := json.Marshal(&doc)
		if merr != nil {
			s.settleJob(job, StateFailed, nil, merr)
			return
		}
		s.persistResult(job, &doc)
		job.settle(StateDone, blob, "")
		s.countSettled(StateDone, &doc)
		s.release(job)
	case errors.Is(err, core.ErrInterrupted) ||
		(job.wasStopRequested() && !job.wasUserCanceled()):
		// Drain got here first: state is checkpointed, no marker is
		// written, a restart resumes the job.
		job.settle(StateInterrupted, nil, "")
		s.countSettled(StateInterrupted, nil)
		s.release(job)
	case job.wasUserCanceled():
		s.writeCanceled(job)
		job.settle(StateCanceled, nil, "")
		s.countSettled(StateCanceled, nil)
		s.release(job)
	default:
		s.settleJob(job, StateFailed, nil, err)
	}
}

func (s *Server) settleJob(job *Job, state State, doc *ResultDoc, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	if state == StateFailed && job.dir != "" {
		rec := failedRecord{Error: msg}
		if serr := checkpoint.Save(filepath.Join(job.dir, "failed.json"), failedKind, failedVersion, &rec); serr != nil {
			s.logf("persisting failure of %s: %v", job.ID, serr)
		}
	}
	job.settle(state, nil, msg)
	s.countSettled(state, doc)
	s.release(job)
}

func (s *Server) writeCanceled(job *Job) {
	if job.dir == "" {
		return
	}
	rec := canceledRecord{Reason: "user"}
	if err := checkpoint.Save(filepath.Join(job.dir, "canceled.json"), canceledKind, canceledVersion, &rec); err != nil {
		s.logf("persisting cancel of %s: %v", job.ID, err)
	}
}

// persistResult writes the per-job result first (authoritative), then
// the cache entry; recovery repairs the cache from the result if a
// crash lands between the two.
func (s *Server) persistResult(job *Job, doc *ResultDoc) {
	if job.dir != "" {
		if err := checkpoint.Save(filepath.Join(job.dir, "result.json"), resultKind, resultVersion, doc); err != nil {
			s.logf("persisting result of %s: %v", job.ID, err)
		}
	}
	if path := s.cachePath(job.Fingerprint); path != "" {
		if err := checkpoint.Save(path, resultKind, resultVersion, doc); err != nil {
			s.logf("caching result of %s: %v", job.ID, err)
		} else if s.idx != nil {
			s.idx.add(job.Fingerprint, job.ID, doc.Kind, doc.Experiment)
		}
	} else {
		blob, err := json.Marshal(doc)
		if err == nil {
			s.mu.Lock()
			if s.memCache == nil {
				s.memCache = make(map[string][]byte)
			}
			s.memCache[job.Fingerprint] = blob
			s.mu.Unlock()
		}
	}
}

func (s *Server) countSettled(state State, doc *ResultDoc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch state {
	case StateDone:
		s.stats.Completed++
		if doc != nil {
			s.stats.GuardViolations += doc.GuardViolations
		}
	case StateFailed:
		s.stats.Failed++
	case StateCanceled:
		s.stats.Canceled++
	case StateInterrupted:
		s.stats.Interrupted++
	}
}

// release frees a job's admission slots (tenant count, single-flight
// registration) exactly once.
func (s *Server) release(job *Job) {
	job.releaseOnce.Do(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.inflight[job.Fingerprint] == job {
			delete(s.inflight, job.Fingerprint)
		}
		if s.tenants[job.Tenant] > 0 {
			s.tenants[job.Tenant]--
		}
	})
}

// progressEvery throttles per-epoch progress events: full epoch
// granularity is noise at SSE timescales, and the hook runs on the
// simulation goroutine.
const progressEvery = 32

// runSim executes a sim job, resuming from its snapshot when one
// survives and checkpointing as it goes.
func (s *Server) runSim(ctx context.Context, job *Job) (ResultDoc, error) {
	cfg := job.simCfg
	cfg.Shards = s.cfg.Shards
	sys, err := core.New(cfg)
	if err != nil {
		return ResultDoc{}, err
	}
	if ctx != nil {
		sys.SetContext(ctx)
	}
	sys.OnEpoch(func(epoch int64, now sim.Time) {
		if epoch%progressEvery == 0 {
			job.publishProgress(epoch, now.Millis())
		}
	})
	ckpt := ""
	if job.dir != "" && cfg.NoCMode != "flit" {
		ckpt = filepath.Join(job.dir, "sim.ckpt")
		var snap core.Snapshot
		switch lerr := checkpoint.Load(ckpt, core.SnapshotKind, core.SnapshotVersion, &snap); {
		case lerr == nil:
			if err := sys.Restore(&snap); err != nil {
				return ResultDoc{}, err
			}
		case os.IsNotExist(lerr):
			// Fresh run.
		default:
			return ResultDoc{}, lerr
		}
		sys.CheckpointEvery(s.cfg.CheckpointEvery, func(snap *core.Snapshot) error {
			return checkpoint.Save(ckpt, core.SnapshotKind, core.SnapshotVersion, snap)
		})
	}
	job.setHooks(sys.RequestStop, sys.GuardExport)
	if job.wasStopRequested() {
		sys.RequestStop() // drain won the race with hook installation
	}
	rep, err := sys.Run()
	if err != nil {
		return ResultDoc{}, err
	}
	blob, err := rep.JSON()
	if err != nil {
		return ResultDoc{}, err
	}
	if ckpt != "" {
		if rmErr := os.Remove(ckpt); rmErr != nil && !os.IsNotExist(rmErr) {
			return ResultDoc{}, rmErr
		}
	}
	return ResultDoc{
		Kind:            KindSim,
		Fingerprint:     job.Fingerprint,
		Report:          blob,
		GuardViolations: rep.GuardViolations,
	}, nil
}

// runSuite executes a suite job through expt.Runner with the job
// directory as its durable checkpoint root: the cell journal plus
// periodic snapshots make a killed suite resume without redoing
// finished cells.
func (s *Server) runSuite(ctx context.Context, job *Job) (ResultDoc, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &expt.Runner{
		Quick:           job.Spec.Quick,
		BaseSeed:        job.Spec.BaseSeed,
		GuardPolicy:     strings.ToLower(job.Spec.GuardPolicy),
		Workers:         s.cfg.CellWorkers,
		Shards:          s.cfg.Shards,
		CellTimeout:     s.cfg.CellTimeout,
		Retries:         s.cfg.Retries,
		RetryBackoff:    s.cfg.RetryBackoff,
		CheckpointDir:   job.dir,
		Resume:          true,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Progress: func(id string, done, total int) {
			job.publishCells(done, total)
		},
		OnCellEpoch: func(id string, cell int, epoch int64, now sim.Time) {
			if epoch%progressEvery == 0 {
				job.publishCellEpoch(cell, epoch, now.Millis())
			}
		},
	}
	if job.dir == "" {
		r.CheckpointDir = ""
		r.Resume = false
	}
	// A suite's graceful stop is context cancellation: the journal and
	// per-cell snapshots already persist all completed progress.
	job.setHooks(cancel, nil)
	if job.wasStopRequested() {
		cancel()
	}
	res, err := r.RunJob(sctx, strings.ToUpper(strings.TrimSpace(job.Spec.Experiment)))
	if err != nil {
		return ResultDoc{}, err
	}
	doc := ResultDoc{
		Kind:        KindSuite,
		Fingerprint: job.Fingerprint,
		Experiment:  res.ID,
		Title:       res.Title,
		Text:        res.Render(),
	}
	if res.Table != nil {
		doc.CSV = res.Table.CSV()
	}
	return doc, nil
}
