package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxSpecBytes bounds submission bodies; a spec is a small JSON
// document and anything larger is a client error, not a buffering job.
const maxSpecBytes = 1 << 20

// Health is the document served by /healthz: readiness, the counter
// snapshot, and every job including live guard exports for running
// simulations.
type Health struct {
	Status string   `json:"status"` // "ok" or "draining"
	Stats  Stats    `json:"stats"`
	Jobs   []Status `json:"jobs"`
}

// Health assembles the health document.
func (s *Server) Health() Health {
	h := Health{Status: "ok", Stats: s.Stats(), Jobs: s.Jobs()}
	if h.Stats.Draining {
		h.Status = "draining"
	}
	return h
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs             submit (X-Tenant header scopes caps)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result document (200 only when done)
//	GET    /v1/jobs/{id}/events SSE progress/lifecycle stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            counter snapshot
//	GET    /healthz             full health document
//	GET    /readyz              200 while admitting, 503 while draining
//	GET    /livez               200 while the process serves
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is committed; nothing left to do
}

func (s *Server) retryAfter() string {
	secs := int(s.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// submitResponse is the body of a successful submission.
type submitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	Deduped     bool   `json:"deduped,omitempty"`
	CacheHit    bool   `json:"cacheHit,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	out, err := s.Submit(spec, r.Header.Get("X-Tenant"))
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantLimit):
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:          out.Job.ID,
		Fingerprint: out.Job.Fingerprint,
		State:       out.Job.State(),
		Deduped:     out.Deduped,
		CacheHit:    out.CacheHit,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: ErrUnknownJob.Error()})
	}
	return job, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if doc, ok := job.Result(); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
		return
	}
	st := job.Status()
	code := http.StatusNotFound // not done yet: queued/running/interrupted
	if st.State == StateFailed || st.State == StateCanceled {
		code = http.StatusConflict // will never be done
	}
	writeJSON(w, code, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(job.ID); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents streams the job's events as SSE. The subscription buffer
// is bounded: a client that cannot keep up first loses progress
// granularity (conflation) and, if it stalls outright, the stream —
// the simulation never waits for a socket.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported"})
		return
	}
	sub := job.Subscribe(s.cfg.SubscriberBuffer)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Open with the current status so late subscribers see state at all.
	st := job.Status()
	writeSSE(w, Event{Type: EventState, JobID: job.ID, State: st.State, Error: st.Error})
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.C:
			if !open {
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		}
	}
}

func writeSSE(w io.Writer, ev Event) {
	blob, err := json.Marshal(&ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, blob)
}
