package service

import (
	"os"
	"path/filepath"
	"testing"

	"potsim/internal/results"
	"potsim/internal/sim"
)

// TestCacheIndexBacksHitsAcrossRestart drives the segment-backed
// index end to end: a completed job lands one index row, identical
// submissions count as index hits in the same process and after a
// restart, and the index store itself stays a valid, queryable
// columnar store.
func TestCacheIndexBacksHitsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := simSpec(20*sim.Millisecond, 17)

	s1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first.Job, StateDone)
	again, err := s1.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("second identical submission missed the cache")
	}
	if st := s1.Stats(); st.CacheIndexHits != 1 {
		t.Fatalf("CacheIndexHits = %d, want 1 (stats %+v)", st.CacheIndexHits, st)
	}
	drain(t, s1)

	// The index is a real result store: cmd/results could audit it.
	st, err := results.Open(filepath.Join(dir, "cache-index"), nil)
	if err != nil {
		t.Fatalf("cache index is not a valid store: %v", err)
	}
	if st.Rows() != 1 {
		t.Fatalf("index rows = %d, want 1", st.Rows())
	}
	sc := st.Scan()
	if !sc.Next() {
		t.Fatalf("index scan empty: %v", sc.Err())
	}
	if got := sc.Str(st.Schema().Col("fingerprint")); got != first.Job.Fingerprint {
		t.Fatalf("indexed fingerprint %q != job fingerprint %q", got, first.Job.Fingerprint)
	}
	if got := sc.Str(st.Schema().Col("job")); got != first.Job.ID {
		t.Fatalf("indexed job %q != %q", got, first.Job.ID)
	}

	// A fresh process reloads the fingerprint set from the segments and
	// serves the hit without re-running anything.
	s2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	third, err := s2.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatal("restarted server missed the durable cache")
	}
	if st := s2.Stats(); st.CacheIndexHits != 1 {
		t.Fatalf("restarted CacheIndexHits = %d, want 1", st.CacheIndexHits)
	}
}

// TestCacheIndexRebuildsFromCacheDir corrupts the index so the store
// cannot open (forcing the rebuild path) and checks reconciliation
// re-adopts the orphaned cache entries, so lookups still hit.
func TestCacheIndexRebuildsFromCacheDir(t *testing.T) {
	dir := t.TempDir()
	spec := simSpec(20*sim.Millisecond, 19)

	s1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s1.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, out.Job, StateDone)
	drain(t, s1)

	// Corrupt the index beyond repair: truncate every segment.
	segs, err := filepath.Glob(filepath.Join(dir, "cache-index", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no index segments to corrupt (err %v)", err)
	}
	for _, seg := range segs {
		if err := os.WriteFile(seg, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("corrupt index must rebuild, not fail startup: %v", err)
	}
	defer drain(t, s2)
	hit, err := s2.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("reconciled index lost the cache entry")
	}
	if st := s2.Stats(); st.CacheIndexHits != 1 {
		t.Fatalf("CacheIndexHits after rebuild = %d, want 1", st.CacheIndexHits)
	}
}
