package scheduler

import (
	"encoding/json"
	"reflect"
	"testing"

	"potsim/internal/aging"
	"potsim/internal/dvfs"
	"potsim/internal/power"
	"potsim/internal/sbst"
	"potsim/internal/sim"
	"potsim/internal/tech"
)

func snapCfg() Config {
	node := tech.Default()
	return Config{
		Cores:       9,
		Model:       power.NewModel(node),
		Table:       dvfs.NewTable(node, 4),
		Criticality: aging.DefaultCriticalityModel(),
		Routines:    sbst.Library(),
		Options:     DefaultOptions(),
	}
}

func TestPOTSSnapshotRoundTrip(t *testing.T) {
	mk := func() *POTS {
		p, err := NewPOTS(snapCfg())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := mk()
	cores := make([]CoreSnapshot, 9)
	for i := range cores {
		cores[i] = CoreSnapshot{ID: i, Idle: true, Stress: 0.1 * float64(i%4), Util: 0.2, TempK: 330}
	}
	// Drive some history: plans, completions, an abort.
	for epoch := 0; epoch < 30; epoch++ {
		now := sim.Time(epoch*60) * sim.Millisecond
		for _, d := range p.Plan(now, cores, 5) {
			p.OnTestComplete(d.Core, d.Level, now+sim.Millisecond)
		}
	}
	p.OnTestAborted(4, 2*sim.Second)

	blob, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var st POTSState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	q := mk()
	if err := q.Restore(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Stats(), q.Stats()) {
		t.Fatal("restored stats differ")
	}
	// Continuation: identical future plans.
	for epoch := 0; epoch < 10; epoch++ {
		now := 2*sim.Second + sim.Time(epoch*60)*sim.Millisecond
		d1 := p.Plan(now, cores, 3)
		d2 := q.Plan(now, cores, 3)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("epoch %d: plans diverged: %v vs %v", epoch, d1, d2)
		}
		for i := range d1 {
			p.OnTestComplete(d1[i].Core, d1[i].Level, now+sim.Millisecond)
			q.OnTestComplete(d2[i].Core, d2[i].Level, now+sim.Millisecond)
		}
	}
	if !reflect.DeepEqual(p.Snapshot(), q.Snapshot()) {
		t.Fatal("post-continuation state diverged")
	}
}

func TestPOTSRestoreRejectsMismatch(t *testing.T) {
	p, _ := NewPOTS(snapCfg())
	small := snapCfg()
	small.Cores = 4
	q, _ := NewPOTS(small)
	if err := q.Restore(p.Snapshot()); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
	lv := snapCfg()
	lv.Table = dvfs.NewTable(tech.Default(), 8)
	r, _ := NewPOTS(lv)
	if err := r.Restore(p.Snapshot()); err == nil {
		t.Fatal("level-count mismatch accepted")
	}
}
