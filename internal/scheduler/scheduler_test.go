package scheduler

import (
	"math"
	"testing"

	"potsim/internal/aging"
	"potsim/internal/dvfs"
	"potsim/internal/power"
	"potsim/internal/sbst"
	"potsim/internal/sim"
	"potsim/internal/tech"
)

func testConfig(cores int) Config {
	node := tech.Default()
	return Config{
		Cores:       cores,
		Model:       power.NewModel(node),
		Table:       dvfs.NewTable(node, 8),
		Criticality: aging.DefaultCriticalityModel(),
		Routines:    sbst.Library(),
		Options:     DefaultOptions(),
	}
}

func mustPOTS(t *testing.T, cfg Config) *POTS {
	t.Helper()
	p, err := NewPOTS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func idleCores(n int) []CoreSnapshot {
	out := make([]CoreSnapshot, n)
	for i := range out {
		out[i] = CoreSnapshot{ID: i, Idle: true, TempK: 318}
	}
	return out
}

func TestNewPOTSValidation(t *testing.T) {
	cfg := testConfig(4)
	cfg.Cores = 0
	if _, err := NewPOTS(cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = testConfig(4)
	cfg.Table = nil
	if _, err := NewPOTS(cfg); err == nil {
		t.Error("nil table accepted")
	}
	cfg = testConfig(4)
	cfg.Routines = nil
	if _, err := NewPOTS(cfg); err == nil {
		t.Error("no routines accepted")
	}
}

func TestPlanSkipsBusyAndTestingCores(t *testing.T) {
	p := mustPOTS(t, testConfig(4))
	now := sim.Second // everything long overdue
	cores := idleCores(4)
	cores[1].Idle = false
	cores[2].Testing = true
	dec := p.Plan(now, cores, 1e9)
	for _, d := range dec {
		if d.Core == 1 || d.Core == 2 {
			t.Errorf("scheduled test on unavailable core %d", d.Core)
		}
	}
	if len(dec) != 2 {
		t.Errorf("got %d decisions, want 2", len(dec))
	}
}

func TestPlanRespectsPowerSlack(t *testing.T) {
	p := mustPOTS(t, testConfig(16))
	now := sim.Second
	// Slack for roughly one test at the top level.
	one := p.estimatePower(p.routines[0], p.table.Highest(), 318)
	dec := p.Plan(now, idleCores(16), one*1.5)
	var used float64
	for _, d := range dec {
		used += p.estimatePower(d.Routine, d.Level, 318)
	}
	if used > one*1.5+1e-9 {
		t.Errorf("admitted %v W of tests into %v W slack", used, one*1.5)
	}
	if len(dec) == 0 {
		t.Error("no test admitted despite sufficient slack for one")
	}
	if p.Stats().SkippedPower == 0 {
		t.Error("power skips not recorded")
	}
}

func TestPlanZeroSlackAdmitsNothing(t *testing.T) {
	p := mustPOTS(t, testConfig(8))
	if dec := p.Plan(sim.Second, idleCores(8), 0); len(dec) != 0 {
		t.Errorf("admitted %d tests with zero slack", len(dec))
	}
}

func TestPowerUnawareIgnoresSlack(t *testing.T) {
	naive, err := NewNaiveIdle(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	dec := naive.Plan(sim.Second, idleCores(8), 0)
	if len(dec) != 8 {
		t.Errorf("power-unaware baseline launched %d tests, want 8", len(dec))
	}
}

func TestCriticalityOrdering(t *testing.T) {
	p := mustPOTS(t, testConfig(4))
	now := 100 * sim.Millisecond
	cores := idleCores(4)
	cores[2].Stress = 1.0 // most worn
	cores[3].Util = 1.0   // most utilised
	// Slack for exactly one test: the most critical core (2) must win.
	one := p.estimatePower(p.routines[0], p.table.Highest(), 318)
	dec := p.Plan(now, cores, one*1.2)
	if len(dec) != 1 {
		t.Fatalf("got %d decisions, want 1", len(dec))
	}
	if dec[0].Core != 2 {
		t.Errorf("most critical core not chosen: got %d, want 2", dec[0].Core)
	}
}

func TestMinCriticalityThreshold(t *testing.T) {
	p := mustPOTS(t, testConfig(4))
	// Right after a test, urgency is ~0: nothing should be scheduled.
	for c := 0; c < 4; c++ {
		p.OnTestComplete(c, p.table.Highest(), sim.Millisecond)
	}
	dec := p.Plan(2*sim.Millisecond, idleCores(4), 1e9)
	if len(dec) != 0 {
		t.Errorf("fresh cores scheduled for test: %d decisions", len(dec))
	}
}

func TestLevelRotationCoversAllLevels(t *testing.T) {
	cfg := testConfig(1)
	p := mustPOTS(t, cfg)
	levels := cfg.Table.Levels()
	seen := map[int]bool{}
	now := sim.Time(0)
	for i := 0; i < levels; i++ {
		now += sim.Second
		dec := p.Plan(now, idleCores(1), 1e9)
		if len(dec) != 1 {
			t.Fatalf("round %d: got %d decisions", i, len(dec))
		}
		seen[dec[0].Level] = true
		p.OnTestComplete(0, dec[0].Level, now)
	}
	if len(seen) != levels {
		t.Errorf("rotation covered %d/%d levels", len(seen), levels)
	}
	if cov := p.Stats().CoverageOfLevels(); cov != 1 {
		t.Errorf("CoverageOfLevels = %v, want 1", cov)
	}
}

func TestRotationDisabledUsesTopLevel(t *testing.T) {
	cfg := testConfig(1)
	cfg.Options.RotateLevels = false
	p := mustPOTS(t, cfg)
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		now += sim.Second
		dec := p.Plan(now, idleCores(1), 1e9)
		if len(dec) != 1 || dec[0].Level != cfg.Table.Highest() {
			t.Fatalf("round %d: expected top level, got %+v", i, dec)
		}
		p.OnTestComplete(0, dec[0].Level, now)
	}
}

func TestRoutineRotation(t *testing.T) {
	cfg := testConfig(1)
	p := mustPOTS(t, cfg)
	seen := map[string]bool{}
	now := sim.Time(0)
	for i := 0; i < len(cfg.Routines); i++ {
		now += sim.Second
		dec := p.Plan(now, idleCores(1), 1e9)
		if len(dec) != 1 {
			t.Fatal("expected one decision")
		}
		seen[dec[0].Routine.Name] = true
		p.OnTestComplete(0, dec[0].Level, now)
	}
	if len(seen) != len(cfg.Routines) {
		t.Errorf("routine rotation covered %d/%d routines", len(seen), len(cfg.Routines))
	}
}

func TestMaxConcurrent(t *testing.T) {
	cfg := testConfig(8)
	cfg.Options.MaxConcurrent = 2
	p := mustPOTS(t, cfg)
	dec := p.Plan(sim.Second, idleCores(8), 1e9)
	if len(dec) != 2 {
		t.Errorf("MaxConcurrent=2 admitted %d", len(dec))
	}
	// With one already testing, only one more may start.
	cores := idleCores(8)
	cores[7].Testing = true
	dec = p.Plan(2*sim.Second, cores, 1e9)
	if len(dec) != 1 {
		t.Errorf("with one in flight, admitted %d, want 1", len(dec))
	}
}

func TestAbortBookkeeping(t *testing.T) {
	p := mustPOTS(t, testConfig(2))
	dec := p.Plan(sim.Second, idleCores(2), 1e9)
	if len(dec) == 0 {
		t.Fatal("no tests launched")
	}
	before := p.LastTest(dec[0].Core)
	p.OnTestAborted(dec[0].Core, sim.Second+sim.Millisecond)
	if p.LastTest(dec[0].Core) != before {
		t.Error("abort must not count as a completed test")
	}
	if p.Stats().Aborted != 1 {
		t.Error("abort not counted")
	}
}

func TestNoTestPolicy(t *testing.T) {
	var nt NoTest
	if nt.Name() != "NoTest" {
		t.Error("name wrong")
	}
	if dec := nt.Plan(sim.Second, idleCores(4), 1e9); dec != nil {
		t.Error("NoTest scheduled something")
	}
	nt.OnTestComplete(0, 0, 0) // must not panic
	nt.OnTestAborted(0, 0)
}

func TestPeriodicIsCriticalityBlind(t *testing.T) {
	p, err := NewPeriodic(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cores := idleCores(4)
	cores[3].Stress = 1
	// Tiny slack admits one test; a criticality-blind policy picks by
	// round-robin position, not stress.
	one := p.estimatePower(p.routines[0], p.table.Highest(), 318)
	dec := p.Plan(sim.Microsecond, cores, one*1.2)
	if len(dec) != 1 {
		t.Fatalf("got %d decisions", len(dec))
	}
	if dec[0].Core == 3 {
		t.Log("periodic picked the stressed core by coincidence of rotation")
	}
	if p.Name() != "Periodic" {
		t.Error("name wrong")
	}
}

func TestMeanTestInterval(t *testing.T) {
	if MeanTestInterval(sim.Second, 4) != 250*sim.Millisecond {
		t.Error("interval math wrong")
	}
	if MeanTestInterval(sim.Second, 0) != -1 {
		t.Error("zero completions should yield -1")
	}
}

func TestGiniTestShare(t *testing.T) {
	even := Stats{PerCoreCompleted: []int{5, 5, 5, 5}}
	skew := Stats{PerCoreCompleted: []int{20, 0, 0, 0}}
	ge, gs := even.GiniTestShare(), skew.GiniTestShare()
	if ge > 0.05 {
		t.Errorf("even distribution gini = %v, want ~0", ge)
	}
	if gs < 0.5 {
		t.Errorf("skewed distribution gini = %v, want high", gs)
	}
	if (Stats{}).GiniTestShare() != 0 {
		t.Error("empty stats gini should be 0")
	}
	if (Stats{PerCoreCompleted: []int{0, 0}}).GiniTestShare() != 0 {
		t.Error("all-zero gini should be 0")
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	p := mustPOTS(t, testConfig(2))
	s := p.Stats()
	if len(s.LevelRuns) == 0 {
		t.Fatal("no level runs slice")
	}
	s.LevelRuns[0] = 999
	if p.Stats().LevelRuns[0] == 999 {
		t.Error("Stats() exposed internal slice")
	}
}

func TestEstimatePowerScalesWithLevel(t *testing.T) {
	p := mustPOTS(t, testConfig(1))
	r := p.routines[1]
	low := p.estimatePower(r, 0, 318)
	high := p.estimatePower(r, p.table.Highest(), 318)
	if !(low < high) || low <= 0 {
		t.Errorf("test power not increasing in level: low=%v high=%v", low, high)
	}
	if math.IsNaN(low) || math.IsNaN(high) {
		t.Error("NaN power estimate")
	}
}

func TestRotationDisabledCoverageIsOneLevel(t *testing.T) {
	cfg := testConfig(1)
	cfg.Options.RotateLevels = false
	p := mustPOTS(t, cfg)
	now := sim.Time(0)
	for i := 0; i < 6; i++ {
		now += sim.Second
		dec := p.Plan(now, idleCores(1), 1e9)
		if len(dec) != 1 {
			t.Fatal("expected one decision")
		}
		p.OnTestComplete(0, dec[0].Level, now)
	}
	want := 1.0 / float64(cfg.Table.Levels())
	if cov := p.Stats().CoverageOfLevels(); math.Abs(cov-want) > 1e-9 {
		t.Errorf("coverage with rotation off = %v, want %v", cov, want)
	}
}

func TestIntervalStats(t *testing.T) {
	p := mustPOTS(t, testConfig(1))
	times := []sim.Time{10, 30, 60, 100} // gaps 20, 30, 40
	for _, at := range times {
		p.OnTestComplete(0, p.table.Highest(), at*sim.Millisecond)
	}
	mean, p95, ok := p.Stats().IntervalStats()
	if !ok {
		t.Fatal("interval stats unavailable")
	}
	if mean != 30*sim.Millisecond {
		t.Errorf("mean interval = %v, want 30ms", mean)
	}
	if p95 != 40*sim.Millisecond {
		t.Errorf("p95 interval = %v, want 40ms", p95)
	}
	if _, _, ok := (Stats{}).IntervalStats(); ok {
		t.Error("empty stats should report !ok")
	}
}

func TestThermalGuardSkipsHotCores(t *testing.T) {
	cfg := testConfig(4)
	cfg.Options.MaxTestTempK = 350
	p := mustPOTS(t, cfg)
	cores := idleCores(4)
	cores[1].TempK = 360 // above guard
	cores[2].TempK = 400
	dec := p.Plan(sim.Second, cores, 1e9)
	for _, d := range dec {
		if d.Core == 1 || d.Core == 2 {
			t.Errorf("scheduled test on hot core %d", d.Core)
		}
	}
	if len(dec) != 2 {
		t.Errorf("got %d decisions, want 2 cool cores", len(dec))
	}
	if p.Stats().SkippedThermal != 2 {
		t.Errorf("thermal skips = %d, want 2", p.Stats().SkippedThermal)
	}
	// Guard disabled: everything hot is fair game.
	cfg.Options.MaxTestTempK = 0
	p2 := mustPOTS(t, cfg)
	if dec := p2.Plan(sim.Second, cores, 1e9); len(dec) != 4 {
		t.Errorf("guard disabled: got %d decisions, want 4", len(dec))
	}
}

func TestPredictMeanInterval(t *testing.T) {
	target := 50 * sim.Millisecond
	dur := 2 * sim.Millisecond
	// Plenty of idle time: demand-limited, interval = target.
	if got := PredictMeanInterval(target, dur, 0.8, 1); got != target {
		t.Errorf("demand-limited interval = %v, want %v", got, target)
	}
	// Scarce idle time: supply-limited.
	got := PredictMeanInterval(target, dur, 0.01, 1)
	if want := 200 * sim.Millisecond; got != want {
		t.Errorf("supply-limited interval = %v, want %v", got, want)
	}
	// Power admission halves the supply.
	got = PredictMeanInterval(target, dur, 0.01, 0.5)
	if want := 400 * sim.Millisecond; got != want {
		t.Errorf("admission-limited interval = %v, want %v", got, want)
	}
	// Degenerate inputs.
	if PredictMeanInterval(target, dur, 0, 1) != math.MaxInt64 {
		t.Error("zero idle should predict no testing")
	}
	if PredictMeanInterval(target, dur, 2, 2) != target {
		t.Error("inputs above 1 should clamp")
	}
}

func TestMeanRoutineDuration(t *testing.T) {
	cfg := testConfig(1)
	d := MeanRoutineDuration(cfg.Routines, cfg.Table)
	if d <= 0 {
		t.Fatal("non-positive mean duration")
	}
	// Must exceed the fastest possible run and stay below the slowest.
	var fastest, slowest sim.Time
	fastest = 1 << 62
	for _, r := range cfg.Routines {
		if v := r.Duration(cfg.Table.Point(cfg.Table.Highest()).FreqHz); v < fastest {
			fastest = v
		}
		if v := r.Duration(cfg.Table.Point(0).FreqHz); v > slowest {
			slowest = v
		}
	}
	if d <= fastest || d >= slowest {
		t.Errorf("mean duration %v outside (%v, %v)", d, fastest, slowest)
	}
	if MeanRoutineDuration(nil, cfg.Table) != 0 {
		t.Error("empty routine set should yield 0")
	}
}

func TestSegmentedSessionCreditsOnlyAtEnd(t *testing.T) {
	cfg := testConfig(1)
	cfg.Routines = sbst.Segment(cfg.Routines[1], 100_000) // functional-full chunks
	p := mustPOTS(t, cfg)
	now := sim.Time(0)
	for i, seg := range cfg.Routines {
		now += sim.Second
		dec := p.Plan(now, idleCores(1), 1e9)
		if len(dec) != 1 {
			t.Fatalf("segment %d not scheduled (core should stay due mid-session)", i)
		}
		if dec[0].Routine.Name != seg.Name {
			t.Fatalf("segment order broken: got %s, want %s", dec[0].Routine.Name, seg.Name)
		}
		p.OnTestComplete(0, dec[0].Level, now)
		if i < len(cfg.Routines)-1 && p.LastTest(0) != 0 {
			t.Fatalf("mid-session segment %d credited the interval", i)
		}
	}
	if p.LastTest(0) != now {
		t.Error("session end did not credit the interval")
	}
	// All segments of one session run at the same level.
	runs := p.Stats().LevelRuns
	if runs[cfg.Table.Highest()] != len(cfg.Routines) {
		t.Errorf("session segments spread across levels: %v", runs)
	}
}
