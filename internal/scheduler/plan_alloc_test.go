package scheduler

import (
	"testing"

	"potsim/internal/sim"
)

// TestPlanZeroAllocSteadyState pins POTS.Plan to zero allocations once
// its scratch buffers are warm, for both the criticality ranking and the
// round-robin (Periodic) orderings.
func TestPlanZeroAllocSteadyState(t *testing.T) {
	build := []func() (*POTS, error){
		func() (*POTS, error) { return NewPOTS(testConfig(64)) },
		func() (*POTS, error) { return NewPeriodic(testConfig(64)) },
	}
	for _, mk := range build {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		cores := make([]CoreSnapshot, 64)
		for i := range cores {
			cores[i] = CoreSnapshot{ID: i, Idle: i%2 == 0, TempK: 320,
				Stress: float64(i) / 64, Util: float64(63-i) / 64}
		}
		now := sim.Time(0)
		p.Plan(100*sim.Microsecond, cores, 5) // warm the scratch buffers
		allocs := testing.AllocsPerRun(200, func() {
			now += 100 * sim.Microsecond
			p.Plan(now, cores, 5)
		})
		if allocs != 0 {
			t.Fatalf("%s.Plan allocates %.1f per epoch, want 0", p.Name(), allocs)
		}
	}
}
