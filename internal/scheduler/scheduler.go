// Package scheduler implements the paper's primary contribution: the
// power-aware non-intrusive online test scheduler (POTS). Each control
// epoch it ranks idle cores by test criticality (an aging- and
// utilization-derived urgency), admits SBST routines into the power slack
// left under the TDP by the workload, rotates the DVFS level tests run at
// so every operating point gets covered, and yields a core instantly when
// the mapper claims it. Baselines (no testing, power-unaware idle testing,
// blind periodic testing) and ablation switches live here too.
package scheduler

import (
	"fmt"
	"math"
	"sort"

	"potsim/internal/aging"
	"potsim/internal/dvfs"
	"potsim/internal/power"
	"potsim/internal/sbst"
	"potsim/internal/sim"
)

// CoreSnapshot is the per-core state the scheduler sees at an epoch.
type CoreSnapshot struct {
	ID      int
	Idle    bool // free for testing: no task and no reservation
	Testing bool // an SBST routine is already in flight here
	Stress  float64
	Util    float64
	TempK   float64
}

// Decision is one test launch: run Routine on Core at DVFS level Level.
type Decision struct {
	Core    int
	Routine sbst.Routine
	Level   int
}

// Policy is an online test-scheduling strategy.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Plan returns the test launches for this epoch. powerSlackW is the
	// headroom under the TDP after workload power; power-aware policies
	// must fit their launches inside it. The returned slice is only valid
	// until the next Plan call on the same policy (implementations reuse
	// scratch buffers); callers consume it immediately.
	Plan(now sim.Time, cores []CoreSnapshot, powerSlackW float64) []Decision
	// OnTestComplete informs the policy a test finished on core at the
	// given DVFS level.
	OnTestComplete(core, level int, now sim.Time)
	// OnTestAborted informs the policy a test was preempted on core.
	OnTestAborted(core int, now sim.Time)
}

// Options toggles the POTS design points for the ablation study (E10).
type Options struct {
	// PowerAware gates launches on the available power slack; disabling
	// it reproduces the power-unaware baseline behaviour.
	PowerAware bool
	// UseCriticality ranks cores by the aging-derived criticality and
	// skips cores that are not yet due. Disabled, cores are tested
	// round-robin whenever idle.
	UseCriticality bool
	// RotateLevels cycles the DVFS level used for consecutive tests of a
	// core so all operating points are eventually covered (claim C5).
	// Disabled, every test runs at the top level.
	RotateLevels bool
	// MinCriticality is the urgency below which a core is left alone.
	MinCriticality float64
	// MaxConcurrent bounds simultaneous tests (0 = unlimited); real
	// systems bound test traffic on the NoC.
	MaxConcurrent int
	// MaxTestTempK skips cores hotter than this (0 = no thermal guard):
	// SBST routines are the most power-hungry thing a core can run, and
	// launching one on an already-hot core risks a thermal emergency.
	MaxTestTempK float64
}

// DefaultOptions enables the full proposed design.
func DefaultOptions() Options {
	return Options{
		PowerAware:     true,
		UseCriticality: true,
		RotateLevels:   true,
		MinCriticality: 0.5,
		MaxConcurrent:  0,
		MaxTestTempK:   358, // 85 C junction guard
	}
}

// POTS is the proposed power-aware online test scheduler.
type POTS struct {
	name     string                 //potlint:nosnap display name, fixed at construction
	opts     Options                //potlint:nosnap configuration, rebuilt by the caller
	model    power.Model            //potlint:nosnap stateless model, rebuilt by the caller
	table    *dvfs.Table            //potlint:nosnap operating-point table, rebuilt by the caller
	crit     aging.CriticalityModel //potlint:nosnap stateless model, rebuilt by the caller
	routines []sbst.Routine         //potlint:nosnap routine library is configuration

	lastTest  []sim.Time
	nextLevel []int
	nextRtn   []int
	rrCursor  int

	// Plan scratch state, reused across epochs so the steady-state epoch
	// loop schedules without allocating: candidate and decision buffers
	// plus pre-allocated sort.Interface adapters (a heap-held pointer
	// passed to sort.Sort does not box).
	cands   []planCand //potlint:nosnap per-epoch plan scratch, rewritten before every use
	plan    []Decision //potlint:nosnap per-epoch plan scratch, rewritten before every use
	urgSort urgSorter  //potlint:nosnap pre-allocated sort adapter over cands
	rrSort  rrSorter   //potlint:nosnap pre-allocated sort adapter over cands

	stats Stats
}

// planCand is one admissible idle core considered by Plan.
type planCand struct {
	snap CoreSnapshot
	urg  float64
}

// urgSorter orders candidates by descending urgency, tie-broken by
// ascending core ID. Unique IDs make this a strict total order, so any
// correct sort algorithm produces the identical permutation the previous
// sort.Slice call did.
type urgSorter struct{ c []planCand }

func (s *urgSorter) Len() int      { return len(s.c) }
func (s *urgSorter) Swap(i, j int) { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *urgSorter) Less(i, j int) bool {
	//potlint:floateq sort tie-break: equal urgencies are computed identically, so exact inequality is the right test
	if s.c[i].urg != s.c[j].urg {
		return s.c[i].urg > s.c[j].urg
	}
	return s.c[i].snap.ID < s.c[j].snap.ID
}

// rrSorter orders candidates by round-robin distance from the epoch's
// cursor — unique IDs again make the key a strict total order.
type rrSorter struct {
	c      []planCand
	n      int
	cursor int
}

func (s *rrSorter) Len() int      { return len(s.c) }
func (s *rrSorter) Swap(i, j int) { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *rrSorter) Less(i, j int) bool {
	a := (s.c[i].snap.ID - s.cursor + s.n) % s.n
	b := (s.c[j].snap.ID - s.cursor + s.n) % s.n
	return a < b
}

// Stats counts scheduler activity over a run.
type Stats struct {
	Started   int
	Completed int
	Aborted   int
	// Skipped counts admission failures due to insufficient power slack.
	SkippedPower int
	// SkippedThermal counts cores left untested because they were hotter
	// than the thermal guard.
	SkippedThermal int
	// LevelRuns histograms completed tests by DVFS level.
	LevelRuns []int
	// PerCoreCompleted counts completed tests per core.
	PerCoreCompleted []int
	// Intervals collects the measured gaps between consecutive completed
	// tests of the same core (the paper's test-regularity signal).
	Intervals []sim.Time
}

// Config wires a POTS instance.
type Config struct {
	Cores       int
	Model       power.Model
	Table       *dvfs.Table
	Criticality aging.CriticalityModel
	Routines    []sbst.Routine
	Options     Options
	// Name overrides the policy name in reports (for ablation variants).
	Name string
}

// NewPOTS builds the proposed scheduler.
func NewPOTS(cfg Config) (*POTS, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("scheduler: invalid core count %d", cfg.Cores)
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("scheduler: nil DVFS table")
	}
	if len(cfg.Routines) == 0 {
		return nil, fmt.Errorf("scheduler: no SBST routines")
	}
	for _, r := range cfg.Routines {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	name := cfg.Name
	if name == "" {
		name = "POTS"
	}
	p := &POTS{
		name: name, opts: cfg.Options, model: cfg.Model, table: cfg.Table,
		crit: cfg.Criticality, routines: cfg.Routines,
		lastTest:  make([]sim.Time, cfg.Cores),
		nextLevel: make([]int, cfg.Cores),
		nextRtn:   make([]int, cfg.Cores),
	}
	p.stats.LevelRuns = make([]int, cfg.Table.Levels())
	p.stats.PerCoreCompleted = make([]int, cfg.Cores)
	for i := range p.nextLevel {
		p.nextLevel[i] = cfg.Table.Highest() // first test validates full speed
	}
	return p, nil
}

// Name implements Policy.
func (p *POTS) Name() string { return p.name }

// Stats returns a copy of the activity counters.
func (p *POTS) Stats() Stats {
	s := p.stats
	s.LevelRuns = append([]int(nil), p.stats.LevelRuns...)
	s.PerCoreCompleted = append([]int(nil), p.stats.PerCoreCompleted...)
	s.Intervals = append([]sim.Time(nil), p.stats.Intervals...)
	return s
}

// LastTest returns when core was last tested (0 = never).
func (p *POTS) LastTest(core int) sim.Time { return p.lastTest[core] }

// Criticality computes the current urgency of a core, exposed so the
// mapper can be test-aware (TUM reads this through the system).
func (p *POTS) Criticality(core int, now sim.Time, stress, util float64) float64 {
	return p.crit.Criticality(now-p.lastTest[core], stress, util)
}

// estimatePower predicts the chip-power cost of running routine r at
// level on a core at temperature tempK.
func (p *POTS) estimatePower(r sbst.Routine, level int, tempK float64) float64 {
	pt := p.table.Point(level)
	return p.model.Core(pt.Voltage, pt.FreqHz, r.MeanActivity(), tempK).Total()
}

// Plan implements Policy. The returned slice is scratch state reused by
// the next Plan call; callers consume it before planning again (the epoch
// loop launches the decisions immediately).
func (p *POTS) Plan(now sim.Time, cores []CoreSnapshot, powerSlackW float64) []Decision {
	cands := p.cands[:0]
	inFlight := 0
	for _, c := range cores {
		if c.Testing {
			inFlight++
		}
		if !c.Idle || c.Testing {
			continue
		}
		if p.opts.MaxTestTempK > 0 && c.TempK > p.opts.MaxTestTempK {
			p.stats.SkippedThermal++
			continue
		}
		urg := p.crit.Criticality(now-p.lastTest[c.ID], c.Stress, c.Util)
		if p.opts.UseCriticality && urg < p.opts.MinCriticality {
			continue
		}
		cands = append(cands, planCand{snap: c, urg: urg})
	}
	p.cands = cands
	if p.opts.UseCriticality {
		p.urgSort.c = cands
		sort.Sort(&p.urgSort)
	} else {
		// Round-robin start point so low-numbered cores are not favoured.
		p.rrSort.c, p.rrSort.n, p.rrSort.cursor = cands, len(cores), p.rrCursor
		sort.Sort(&p.rrSort)
		if len(cores) > 0 {
			p.rrCursor = (p.rrCursor + 1) % len(cores)
		}
	}

	slack := powerSlackW
	out := p.plan[:0]
	for _, c := range cands {
		if p.opts.MaxConcurrent > 0 && inFlight+len(out) >= p.opts.MaxConcurrent {
			break
		}
		core := c.snap.ID
		level := p.table.Highest()
		if p.opts.RotateLevels {
			level = p.nextLevel[core]
		}
		rtn := p.routines[p.nextRtn[core]%len(p.routines)]
		need := p.estimatePower(rtn, level, c.snap.TempK)
		if p.opts.PowerAware {
			if need > slack {
				p.stats.SkippedPower++
				continue
			}
			slack -= need
		}
		out = append(out, Decision{Core: core, Routine: rtn, Level: level})
		p.stats.Started++
	}
	p.plan = out
	return out
}

// OnTestComplete implements Policy. level is the DVFS level the completed
// test actually executed at. With segmented routines (TC'16 chunking),
// only the session-closing segment credits the core's test interval and
// rotates its level, so a due core keeps running its session's remaining
// segments back-to-back across idle windows until the pass completes.
func (p *POTS) OnTestComplete(core, level int, now sim.Time) {
	just := p.routines[p.nextRtn[core]%len(p.routines)]
	if level >= 0 && level < len(p.stats.LevelRuns) {
		p.stats.LevelRuns[level]++
	}
	p.stats.PerCoreCompleted[core]++
	p.stats.Completed++
	p.nextRtn[core]++
	if !just.EndsSession {
		return // mid-session segment: the core stays due
	}
	if prev := p.lastTest[core]; prev > 0 && now > prev {
		p.stats.Intervals = append(p.stats.Intervals, now-prev)
	}
	p.lastTest[core] = now
	// Rotate the level downward through the table, wrapping to the top,
	// so consecutive sessions of a core sweep every operating point.
	p.nextLevel[core]--
	if p.nextLevel[core] < 0 {
		p.nextLevel[core] = p.table.Highest()
	}
}

// OnTestAborted implements Policy.
func (p *POTS) OnTestAborted(core int, now sim.Time) {
	p.stats.Aborted++
}

// NoTest is the baseline that never schedules tests.
type NoTest struct{}

// Name implements Policy.
func (NoTest) Name() string { return "NoTest" }

// Plan implements Policy.
func (NoTest) Plan(sim.Time, []CoreSnapshot, float64) []Decision { return nil }

// OnTestComplete implements Policy.
func (NoTest) OnTestComplete(int, int, sim.Time) {}

// OnTestAborted implements Policy.
func (NoTest) OnTestAborted(int, sim.Time) {}

// NewNaiveIdle returns the power-unaware baseline: it tests every idle
// core the moment it is due, at full speed, without consulting the power
// budget — the state-of-the-art behaviour the paper argues against.
func NewNaiveIdle(cfg Config) (*POTS, error) {
	cfg.Options = Options{
		PowerAware:     false,
		UseCriticality: true,
		RotateLevels:   false,
		MinCriticality: cfg.Options.MinCriticality,
	}
	//potlint:floateq 0 is the exact unset sentinel of the zero-value Config
	if cfg.Options.MinCriticality == 0 {
		cfg.Options.MinCriticality = 0.5
	}
	if cfg.Name == "" {
		cfg.Name = "NaiveIdle"
	}
	return NewPOTS(cfg)
}

// NewPeriodic returns a blind periodic tester: round-robin over idle
// cores whenever they are idle, power-aware but criticality-blind.
func NewPeriodic(cfg Config) (*POTS, error) {
	cfg.Options = Options{
		PowerAware:     true,
		UseCriticality: false,
		RotateLevels:   true,
	}
	if cfg.Name == "" {
		cfg.Name = "Periodic"
	}
	return NewPOTS(cfg)
}

// MeanTestInterval returns the average time between completed tests of a
// core given its completion count over a horizon; used by E3/E5 reports.
func MeanTestInterval(horizon sim.Time, completed int) sim.Time {
	if completed <= 0 {
		return -1
	}
	return horizon / sim.Time(completed)
}

// CoverageOfLevels reports the fraction of DVFS levels that saw at least
// one completed test (claim C5: should reach 1.0).
func (s Stats) CoverageOfLevels() float64 {
	if len(s.LevelRuns) == 0 {
		return 0
	}
	hit := 0
	for _, n := range s.LevelRuns {
		if n > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(s.LevelRuns))
}

// GiniTestShare measures how evenly completed tests spread over cores
// (0 = perfectly even). Used to show criticality ranking follows stress.
func (s Stats) GiniTestShare() float64 {
	n := len(s.PerCoreCompleted)
	if n == 0 {
		return 0
	}
	vals := append([]int(nil), s.PerCoreCompleted...)
	sort.Ints(vals)
	var cum, totalWeighted float64
	var total float64
	for _, v := range vals {
		total += float64(v)
	}
	//potlint:floateq exact zero: total is a sum of non-negative integer counts
	if total == 0 {
		return 0
	}
	for i, v := range vals {
		cum += float64(v)
		totalWeighted += cum
		_ = i
	}
	// Gini = 1 - 2/(n) * sum_i cum_i/total + 1/n simplified form:
	return math.Abs(1 - (2*totalWeighted-total)/(float64(n)*total))
}

// IntervalStats summarises the measured test-interval distribution:
// mean and 95th percentile in simulated time. ok is false with fewer
// than two completed tests on any core.
func (s Stats) IntervalStats() (mean, p95 sim.Time, ok bool) {
	if len(s.Intervals) == 0 {
		return 0, 0, false
	}
	sorted := append([]sim.Time(nil), s.Intervals...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum sim.Time
	for _, v := range sorted {
		sum += v
	}
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sum / sim.Time(len(sorted)), sorted[idx], true
}

// PredictMeanInterval is the closed-form steady-state estimate of the
// mean test interval a core sustains: testing is either demand-limited
// (the criticality target — cores are not tested before they are due) or
// supply-limited (a core can only test while idle and only when the power
// budget admits the launch), whichever is slower:
//
//	interval = max(target, meanTestDuration / (idleFrac * admitProb))
//
// The TC'16 extension uses exactly this kind of capacity argument to size
// the test-interval target against the workload.
func PredictMeanInterval(target, meanTestDur sim.Time, idleFrac, admitProb float64) sim.Time {
	if idleFrac <= 0 || admitProb <= 0 {
		return math.MaxInt64
	}
	if idleFrac > 1 {
		idleFrac = 1
	}
	if admitProb > 1 {
		admitProb = 1
	}
	supply := sim.Time(float64(meanTestDur) / (idleFrac * admitProb))
	if supply > target {
		return supply
	}
	return target
}

// MeanRoutineDuration returns the average run time of the routine set
// across all DVFS levels of the table — the expected test duration under
// level rotation.
func MeanRoutineDuration(routines []sbst.Routine, table *dvfs.Table) sim.Time {
	if len(routines) == 0 || table == nil || table.Levels() == 0 {
		return 0
	}
	var sum sim.Time
	n := 0
	for _, r := range routines {
		for lvl := 0; lvl < table.Levels(); lvl++ {
			sum += r.Duration(table.Point(lvl).FreqHz)
			n++
		}
	}
	return sum / sim.Time(n)
}
