package scheduler

import (
	"fmt"

	"potsim/internal/sim"
)

// POTSState is the serializable state of a POTS scheduler (which also
// backs the NaiveIdle and Periodic baselines). Options, models, and the
// routine set are configuration, reconstructed by the caller.
type POTSState struct {
	LastTest  []sim.Time `json:"last_test"`
	NextLevel []int      `json:"next_level"`
	NextRtn   []int      `json:"next_rtn"`
	RRCursor  int        `json:"rr_cursor"`
	Stats     Stats      `json:"stats"`
}

// Snapshot captures the scheduler's per-core history and counters.
func (p *POTS) Snapshot() POTSState {
	return POTSState{
		LastTest:  append([]sim.Time(nil), p.lastTest...),
		NextLevel: append([]int(nil), p.nextLevel...),
		NextRtn:   append([]int(nil), p.nextRtn...),
		RRCursor:  p.rrCursor,
		Stats:     p.Stats(), // deep copy of the slices inside
	}
}

// Restore overwrites the scheduler's state with a snapshot taken from a
// scheduler of the same core count.
func (p *POTS) Restore(st POTSState) error {
	n := len(p.lastTest)
	if len(st.LastTest) != n || len(st.NextLevel) != n || len(st.NextRtn) != n {
		return fmt.Errorf("scheduler: snapshot sized %d/%d/%d, scheduler has %d cores",
			len(st.LastTest), len(st.NextLevel), len(st.NextRtn), n)
	}
	if len(st.Stats.LevelRuns) != len(p.stats.LevelRuns) {
		return fmt.Errorf("scheduler: snapshot has %d DVFS levels, scheduler has %d",
			len(st.Stats.LevelRuns), len(p.stats.LevelRuns))
	}
	copy(p.lastTest, st.LastTest)
	copy(p.nextLevel, st.NextLevel)
	copy(p.nextRtn, st.NextRtn)
	p.rrCursor = st.RRCursor
	p.stats = Stats{
		Started:          st.Stats.Started,
		Completed:        st.Stats.Completed,
		Aborted:          st.Stats.Aborted,
		SkippedPower:     st.Stats.SkippedPower,
		SkippedThermal:   st.Stats.SkippedThermal,
		LevelRuns:        append([]int(nil), st.Stats.LevelRuns...),
		PerCoreCompleted: append([]int(nil), st.Stats.PerCoreCompleted...),
		Intervals:        append([]sim.Time(nil), st.Stats.Intervals...),
	}
	if p.stats.PerCoreCompleted == nil {
		p.stats.PerCoreCompleted = make([]int, n)
	}
	return nil
}
