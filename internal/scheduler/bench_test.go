package scheduler

import (
	"testing"

	"potsim/internal/sim"
)

// BenchmarkPlan measures one scheduling epoch over a 64-core snapshot,
// including the completion bookkeeping for every admitted launch.
func BenchmarkPlan(b *testing.B) {
	p, err := NewPOTS(benchConfig(64))
	if err != nil {
		b.Fatal(err)
	}
	cores := make([]CoreSnapshot, 64)
	for i := range cores {
		cores[i] = CoreSnapshot{ID: i, Idle: i%2 == 0, TempK: 320,
			Stress: float64(i) / 64, Util: float64(63-i) / 64}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i+1) * 100 * sim.Microsecond
		dec := p.Plan(now, cores, 5)
		for _, d := range dec {
			p.OnTestComplete(d.Core, d.Level, now)
		}
	}
}

// BenchmarkSchedulerPlan isolates Plan itself — candidate collection,
// criticality ranking and power admission — with no completion traffic,
// pinning the steady-state planning cost and its zero-allocation budget.
func BenchmarkSchedulerPlan(b *testing.B) {
	p, err := NewPOTS(benchConfig(64))
	if err != nil {
		b.Fatal(err)
	}
	cores := make([]CoreSnapshot, 64)
	for i := range cores {
		cores[i] = CoreSnapshot{ID: i, Idle: i%2 == 0, TempK: 320,
			Stress: float64(i) / 64, Util: float64(63-i) / 64}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i+1) * 100 * sim.Microsecond
		p.Plan(now, cores, 5)
	}
}

func benchConfig(cores int) Config {
	return testConfig(cores) // shared with scheduler_test.go
}
