// Dark-silicon sweep: how technology scaling under a fixed package TDP
// darkens the chip — and how the dark area plus the power slack becomes
// the test opportunity the paper exploits. Combines the analytic
// technology model with short system runs at each node.
//
//	go run ./examples/darksilicon
package main

import (
	"fmt"
	"log"

	"potsim/internal/core"
	"potsim/internal/metrics"
	"potsim/internal/sim"
	"potsim/internal/tech"
)

func main() {
	const packageTDP = 32.0 // watts, fixed across generations

	t := metrics.NewTable(
		fmt.Sprintf("technology scaling under a fixed %.0f W package TDP", packageTDP),
		"node", "cores/die", "peak/core(W)", "die-peak(W)", "dark(%)",
		"tests-done", "test-energy(%)")

	type die struct {
		name string
		w, h int
	}
	for _, d := range []die{{"45nm", 4, 4}, {"32nm", 8, 4}, {"22nm", 8, 8}, {"16nm", 16, 8}} {
		node, err := tech.ByName(d.name)
		if err != nil {
			log.Fatal(err)
		}
		cores := d.w * d.h
		cfg := core.DefaultConfig()
		cfg.Node = node
		cfg.Width, cfg.Height = d.w, d.h
		cfg.TDPWatts = packageTDP
		cfg.Horizon = 300 * sim.Millisecond
		cfg.MeanInterarrival = sim.Time(int64(2*sim.Millisecond) * 64 / int64(cores))
		if cores < 16 {
			cfg.Mix.EmbeddedShare = 0
			cfg.Mix.Random.MaxTasks = cores / 2
		}
		sys, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(node.Name, cores, node.PeakCorePower(),
			float64(cores)*node.PeakCorePower(),
			100*node.DarkFraction(packageTDP, cores),
			rep.TestsCompleted, 100*rep.TestEnergyShare)
	}
	fmt.Print(t.Render())
	fmt.Println("\nEach generation doubles the cores on the die while per-core power")
	fmt.Println("shrinks only ~30%: under the fixed package TDP an ever larger chip")
	fmt.Println("fraction must stay dark — exactly the idle+power slack the online")
	fmt.Println("test scheduler converts into fault coverage.")
}
