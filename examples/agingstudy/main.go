// Aging study: a long accelerated-aging run showing the criticality
// metric at work — cores that accumulate stress get shorter test
// intervals, and injected wear-out faults are caught by the online tests.
//
//	go run ./examples/agingstudy
package main

import (
	"fmt"
	"log"
	"sort"

	"potsim/internal/core"
	"potsim/internal/metrics"
	"potsim/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Horizon = 2 * sim.Second
	cfg.Aging.AccelFactor = 2e8 // ~12 effective years of wear in 2 s
	cfg.EnableFaults = true
	cfg.Faults.BaseRatePerSec = 0.05
	cfg.Seed = 11

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	// Rank cores by stress and show how test intensity follows.
	type coreRow struct {
		id     int
		stress float64
		tests  int
		idle   float64
	}
	rows := make([]coreRow, len(rep.PerCoreStress))
	for i := range rows {
		rows[i] = coreRow{i, rep.PerCoreStress[i], rep.PerCoreTests[i], rep.PerCoreIdleFrac[i]}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].stress > rows[b].stress })

	t := metrics.NewTable("most- vs least-stressed cores after accelerated aging",
		"core", "stress", "tests", "idle-frac", "tests-per-idle-sec")
	for _, r := range append(rows[:5], rows[len(rows)-5:]...) {
		rate := 0.0
		if r.idle > 0 {
			rate = float64(r.tests) / (r.idle * rep.Horizon.Seconds())
		}
		t.AddRow(r.id, r.stress, r.tests, r.idle, rate)
	}
	fmt.Println()
	fmt.Print(t.Render())

	fs := rep.FaultStats
	fmt.Printf("\nwear-out faults: %d injected, %d detected (%.0f%%), mean detection latency %v\n",
		fs.Injected, fs.Detected, 100*fs.DetectionRate, fs.MeanLatency)
}
