// Fail-stop scenario: heavy wear-out fault injection with decommissioning
// enabled — once the online tests confirm a core faulty it is power-gated
// out of the resource pool, and the system keeps serving work on the
// shrinking healthy chip (the journal extension's recovery action).
//
//	go run ./examples/failstop
package main

import (
	"fmt"
	"log"

	"potsim/internal/core"
	"potsim/internal/metrics"
	"potsim/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Horizon = 2 * sim.Second
	cfg.EnableFaults = true
	cfg.Faults.BaseRatePerSec = 0.08 // heavily accelerated wear-out
	cfg.DecommissionOnDetect = true
	cfg.Seed = 3

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	healthy := cfg.Cores() - len(rep.DecommissionedCores)
	t := metrics.NewTable("fail-stop outcome",
		"metric", "value")
	t.AddRow("cores at start", cfg.Cores())
	t.AddRow("cores decommissioned", len(rep.DecommissionedCores))
	t.AddRow("cores still healthy", healthy)
	t.AddRow("faults injected", rep.FaultStats.Injected)
	t.AddRow("faults detected", rep.FaultStats.Detected)
	t.AddRow("detection rate (%)", 100*rep.FaultStats.DetectionRate)
	t.AddRow("silent corruptions", rep.FaultStats.Corruptions)
	t.AddRow("tasks completed", rep.TasksCompleted)
	fmt.Println()
	fmt.Print(t.Render())
	fmt.Println("\nDetected-faulty cores are retired from mapping and testing;")
	fmt.Println("the workload continues on the remaining healthy region.")
}
