// Multimedia scenario: a 16nm chip running only the embedded multimedia
// decoders (VOPD, MPEG-4, MWD, PIP) under a tight dark-silicon power
// budget. Compares the proposed power-aware test scheduler against the
// power-unaware baseline and the no-test reference on the same seeds —
// the penalty/violation trade-off the paper's headline claims are about.
//
//	go run ./examples/multimedia
package main

import (
	"fmt"
	"log"

	"potsim/internal/core"
	"potsim/internal/metrics"
	"potsim/internal/sim"
)

func run(cfg core.Config) *core.Report {
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	base := core.DefaultConfig()
	base.Horizon = 500 * sim.Millisecond
	base.Mix.EmbeddedShare = 1 // multimedia graphs only
	base.TDPFraction = 0.30    // binding dark-silicon budget
	base.MapperName = "NN"     // identical mapping across policies
	base.Seed = 7

	t := metrics.NewTable(
		"multimedia decoders on a 16nm chip, TDP "+
			fmt.Sprintf("%.1f W", base.TDP()),
		"policy", "tasks/s", "penalty(%)", "tests-done", "power-skips",
		"violations(%)", "test-energy(%)")

	ref := func() *core.Report {
		cfg := base
		cfg.TestPolicy = core.PolicyNoTest
		return run(cfg)
	}()
	t.AddRow("NoTest (reference)", ref.ThroughputTasksPerSec, 0.0, 0, 0,
		100*ref.ViolationRate, 0.0)

	for _, pol := range []core.TestPolicyKind{core.PolicyPOTS, core.PolicyNaive} {
		cfg := base
		cfg.TestPolicy = pol
		rep := run(cfg)
		t.AddRow(rep.PolicyName, rep.ThroughputTasksPerSec,
			100*rep.ThroughputPenalty(ref), rep.TestsCompleted,
			rep.TestsSkipPower, 100*rep.ViolationRate, 100*rep.TestEnergyShare)
	}
	fmt.Print(t.Render())
	fmt.Println("\nThe proposed scheduler (POTS) tests within the leftover power budget:")
	fmt.Println("it skips launches when the slack is gone instead of blowing the cap.")
}
