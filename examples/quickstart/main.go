// Quickstart: build the default 8x8 16nm manycore, run half a simulated
// second with the proposed power-aware online test scheduler, and print
// the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"potsim/internal/core"
	"potsim/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Horizon = 500 * sim.Millisecond
	cfg.Seed = 42

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Summary())
	fmt.Println("\nCompleted tests per DVFS level (near-threshold ... nominal):")
	fmt.Print(rep.LevelHistogram())
	fmt.Printf("Mean per-core test interval: %.1f ms\n", rep.MeanTestIntervalMS())
}
