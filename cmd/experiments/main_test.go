package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(blob) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments requested should error")
	}
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunReportsAllFailures: every failing experiment must appear in
// the aggregated error, not just the first, and a failure must not
// abort a later healthy experiment.
func TestRunReportsAllFailures(t *testing.T) {
	err := run([]string{"-quick", "-e", "E98", "-e", "E4", "-e", "E99"})
	if err == nil {
		t.Fatal("bad ids accepted")
	}
	msg := err.Error()
	for _, want := range []string{"E98", "E99"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %s: %v", want, err)
		}
	}
	if strings.Contains(msg, "E4:") {
		t.Errorf("healthy experiment reported as failed: %v", err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "3", "-e", "E4", "-e", "E2", "-e", "E12"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFlagClamping: out-of-range -parallel and -workers values are
// clamped rather than rejected or deadlocked on.
func TestRunFlagClamping(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "-3", "-workers", "-7", "-e", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	for _, w := range []string{"1", "8"} {
		if err := run([]string{"-quick", "-workers", w, "-progress", "-e", "E2"}); err != nil {
			t.Fatalf("-workers %s: %v", w, err)
		}
	}
}

func TestRunCSVPerExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-e", "E12", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e4.csv", "e12.csv"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		if len(blob) == 0 {
			t.Errorf("empty CSV %s", name)
		}
	}
}

// TestRunChaosDegradesGracefully: with injected failures the command
// still emits the experiment's partial CSV (failed groups as n/a rows)
// and reports the failure with the cell's label.
func TestRunChaosDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-e", "E5", "-csv", dir,
		"-chaos", "error:mapper=FF"})
	if err == nil {
		t.Fatal("injected failure reported success")
	}
	if !strings.Contains(err.Error(), "mapper=FF") {
		t.Errorf("error does not name the failed cell: %v", err)
	}
	blob, rerr := os.ReadFile(filepath.Join(dir, "e5.csv"))
	if rerr != nil {
		t.Fatalf("degraded CSV not written: %v", rerr)
	}
	if !strings.Contains(string(blob), "n/a") {
		t.Errorf("degraded CSV has no n/a rows:\n%s", blob)
	}
	if !strings.Contains(string(blob), "TUM") {
		t.Errorf("surviving cells missing from degraded CSV:\n%s", blob)
	}
}

// TestRunRetryFlagRescuesFlakyCell: with a retry budget a transiently
// failing cell recovers and the command exits cleanly.
func TestRunRetryFlagRescuesFlakyCell(t *testing.T) {
	err := run([]string{"-quick", "-e", "E4",
		"-chaos", "flaky", "-retries", "2", "-retry-backoff", "1ms"})
	if err != nil {
		t.Fatalf("retries did not rescue the flaky cell: %v", err)
	}
}

func TestRunGuardFlagValidation(t *testing.T) {
	if err := run([]string{"-quick", "-e", "E4", "-guard", "shrug"}); err == nil {
		t.Error("bogus guard policy accepted")
	}
	if err := run([]string{"-quick", "-e", "E4", "-guard", "log"}); err != nil {
		t.Fatalf("log guard policy rejected: %v", err)
	}
	if err := run([]string{"-quick", "-e", "E4", "-chaos", "meteor"}); err == nil {
		t.Error("bogus chaos mode accepted")
	}
}

// TestRunCellTimeoutFlag: a hanging cell is cut off by the watchdog and
// the experiment degrades instead of wedging the whole command.
func TestRunCellTimeoutFlag(t *testing.T) {
	err := run([]string{"-quick", "-e", "E4",
		"-chaos", "hang", "-cell-timeout", "50ms"})
	if err == nil {
		t.Fatal("hung cell reported success")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("failure not attributed to the deadline: %v", err)
	}
}

// TestInterruptThenResumeProducesIdenticalCSV is the end-to-end
// durability contract of the command: a SIGINT mid-suite exits with the
// journal and partial tables flushed, and a -resume run completes the
// suite with a CSV byte-identical to an uninterrupted run. A hang-chaos
// cell holds the suite open so the interrupt deterministically lands
// mid-run.
func TestInterruptThenResumeProducesIdenticalCSV(t *testing.T) {
	goldenDir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E1", "-csv", goldenDir}); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(goldenDir, "e1.csv"))
	if err != nil {
		t.Fatal(err)
	}

	ck := t.TempDir()
	csvDir := t.TempDir()
	errc := make(chan error, 1)
	go func() {
		// The iat=2.000ms cells hang until the signal arrives; the earlier
		// iat=8ms/4ms cells complete and are journaled.
		errc <- run([]string{"-quick", "-e", "E1", "-workers", "1",
			"-csv", csvDir, "-checkpoint-dir", ck, "-chaos", "hang:iat=2.000ms"})
	}()
	time.Sleep(1 * time.Second)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	ierr := <-errc
	if ierr == nil {
		t.Fatal("interrupted suite reported success")
	}
	if !errors.Is(ierr, context.Canceled) {
		t.Fatalf("interrupt surfaced as %v, want a context.Canceled chain", ierr)
	}
	if _, err := os.Stat(filepath.Join(ck, "E1.journal")); err != nil {
		t.Fatalf("interrupt left no journal: %v", err)
	}
	// The partial CSV was flushed atomically: present, with no temp
	// droppings beside it.
	if _, err := os.Stat(filepath.Join(csvDir, "e1.csv")); err != nil {
		t.Fatalf("interrupt left no partial CSV: %v", err)
	}
	tmps, err := filepath.Glob(filepath.Join(csvDir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("atomic CSV write left temp files: %v", tmps)
	}

	if err := run([]string{"-quick", "-e", "E1", "-workers", "2",
		"-csv", csvDir, "-checkpoint-dir", ck, "-resume"}); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(csvDir, "e1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("resumed CSV differs from uninterrupted run:\n-- resumed --\n%s\n-- golden --\n%s", got, golden)
	}
}

func TestResumeFlagRequiresCheckpointDir(t *testing.T) {
	if err := run([]string{"-quick", "-e", "E4", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint-dir accepted")
	}
}
