package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(blob) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments requested should error")
	}
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunReportsAllFailures: every failing experiment must appear in
// the aggregated error, not just the first, and a failure must not
// abort a later healthy experiment.
func TestRunReportsAllFailures(t *testing.T) {
	err := run([]string{"-quick", "-e", "E98", "-e", "E4", "-e", "E99"})
	if err == nil {
		t.Fatal("bad ids accepted")
	}
	msg := err.Error()
	for _, want := range []string{"E98", "E99"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %s: %v", want, err)
		}
	}
	if strings.Contains(msg, "E4:") {
		t.Errorf("healthy experiment reported as failed: %v", err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "3", "-e", "E4", "-e", "E2", "-e", "E12"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFlagClamping: out-of-range -parallel and -workers values are
// clamped rather than rejected or deadlocked on.
func TestRunFlagClamping(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "-3", "-workers", "-7", "-e", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	for _, w := range []string{"1", "8"} {
		if err := run([]string{"-quick", "-workers", w, "-progress", "-e", "E2"}); err != nil {
			t.Fatalf("-workers %s: %v", w, err)
		}
	}
}

func TestRunCSVPerExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-e", "E12", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e4.csv", "e12.csv"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		if len(blob) == 0 {
			t.Errorf("empty CSV %s", name)
		}
	}
}
