package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(blob) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments requested should error")
	}
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunReportsAllFailures: every failing experiment must appear in
// the aggregated error, not just the first, and a failure must not
// abort a later healthy experiment.
func TestRunReportsAllFailures(t *testing.T) {
	err := run([]string{"-quick", "-e", "E98", "-e", "E4", "-e", "E99"})
	if err == nil {
		t.Fatal("bad ids accepted")
	}
	msg := err.Error()
	for _, want := range []string{"E98", "E99"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %s: %v", want, err)
		}
	}
	if strings.Contains(msg, "E4:") {
		t.Errorf("healthy experiment reported as failed: %v", err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "3", "-e", "E4", "-e", "E2", "-e", "E12"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFlagClamping: out-of-range -parallel and -workers values are
// clamped rather than rejected or deadlocked on.
func TestRunFlagClamping(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "-3", "-workers", "-7", "-e", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	for _, w := range []string{"1", "8"} {
		if err := run([]string{"-quick", "-workers", w, "-progress", "-e", "E2"}); err != nil {
			t.Fatalf("-workers %s: %v", w, err)
		}
	}
}

func TestRunCSVPerExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-e", "E12", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e4.csv", "e12.csv"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		if len(blob) == 0 {
			t.Errorf("empty CSV %s", name)
		}
	}
}

// TestRunChaosDegradesGracefully: with injected failures the command
// still emits the experiment's partial CSV (failed groups as n/a rows)
// and reports the failure with the cell's label.
func TestRunChaosDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-e", "E5", "-csv", dir,
		"-chaos", "error:mapper=FF"})
	if err == nil {
		t.Fatal("injected failure reported success")
	}
	if !strings.Contains(err.Error(), "mapper=FF") {
		t.Errorf("error does not name the failed cell: %v", err)
	}
	blob, rerr := os.ReadFile(filepath.Join(dir, "e5.csv"))
	if rerr != nil {
		t.Fatalf("degraded CSV not written: %v", rerr)
	}
	if !strings.Contains(string(blob), "n/a") {
		t.Errorf("degraded CSV has no n/a rows:\n%s", blob)
	}
	if !strings.Contains(string(blob), "TUM") {
		t.Errorf("surviving cells missing from degraded CSV:\n%s", blob)
	}
}

// TestRunRetryFlagRescuesFlakyCell: with a retry budget a transiently
// failing cell recovers and the command exits cleanly.
func TestRunRetryFlagRescuesFlakyCell(t *testing.T) {
	err := run([]string{"-quick", "-e", "E4",
		"-chaos", "flaky", "-retries", "2", "-retry-backoff", "1ms"})
	if err != nil {
		t.Fatalf("retries did not rescue the flaky cell: %v", err)
	}
}

func TestRunGuardFlagValidation(t *testing.T) {
	if err := run([]string{"-quick", "-e", "E4", "-guard", "shrug"}); err == nil {
		t.Error("bogus guard policy accepted")
	}
	if err := run([]string{"-quick", "-e", "E4", "-guard", "log"}); err != nil {
		t.Fatalf("log guard policy rejected: %v", err)
	}
	if err := run([]string{"-quick", "-e", "E4", "-chaos", "meteor"}); err == nil {
		t.Error("bogus chaos mode accepted")
	}
}

// TestRunCellTimeoutFlag: a hanging cell is cut off by the watchdog and
// the experiment degrades instead of wedging the whole command.
func TestRunCellTimeoutFlag(t *testing.T) {
	err := run([]string{"-quick", "-e", "E4",
		"-chaos", "hang", "-cell-timeout", "50ms"})
	if err == nil {
		t.Fatal("hung cell reported success")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("failure not attributed to the deadline: %v", err)
	}
}
