package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-e", "E4", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(blob) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments requested should error")
	}
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "3", "-e", "E4", "-e", "E2", "-e", "E12"}); err != nil {
		t.Fatal(err)
	}
}
