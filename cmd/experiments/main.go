// Command experiments regenerates the paper-reproduction experiments
// (E1..E10, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	experiments -all            # run everything (takes a few minutes)
//	experiments -e E1 -e E9     # run a subset
//	experiments -quick -all     # fast smoke versions
//	experiments -all -csv dir/  # also dump each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"potsim/internal/expt"
)

type idList []string

func (l *idList) String() string { return strings.Join(*l, ",") }

func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var ids idList
	fs.Var(&ids, "e", "experiment id (repeatable), e.g. -e E1 -e E4")
	all := fs.Bool("all", false, "run every experiment")
	parallel := fs.Int("parallel", 1, "experiments to run concurrently (results still print in order)")
	quick := fs.Bool("quick", false, "short horizons and single seed")
	seed := fs.Uint64("seed", 0, "base seed offset for replication")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV tables into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		ids = expt.IDs()
	}
	if len(ids) == 0 {
		return fmt.Errorf("nothing to run: pass -all or -e <id> (have %v)", expt.IDs())
	}
	runner := &expt.Runner{Quick: *quick, BaseSeed: *seed}
	if *parallel < 1 {
		*parallel = 1
	}

	type outcome struct {
		res     *expt.Result
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(ids))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := runner.Run(id)
			outcomes[i] = outcome{res: res, err: err, elapsed: time.Since(start)}
		}(i, id)
	}
	wg.Wait()

	for i, id := range ids {
		o := outcomes[i]
		if o.err != nil {
			return fmt.Errorf("%s: %w", id, o.err)
		}
		fmt.Println(o.res.Render())
		fmt.Printf("[%s finished in %v]\n\n", o.res.ID, o.elapsed.Round(time.Millisecond))
		if *csvDir != "" && o.res.Table != nil {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, strings.ToLower(o.res.ID)+".csv")
			if err := os.WriteFile(path, []byte(o.res.Table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
