// Command experiments regenerates the paper-reproduction experiments
// (E1..E19, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	experiments -all            # run everything (takes a few minutes)
//	experiments -e E1 -e E9     # run a subset
//	experiments -quick -all     # fast smoke versions
//	experiments -all -store st/ # write columnar result stores (cmd/results queries them)
//	experiments -all -csv dir/  # also dump each table as CSV (an export of the store when -store is set)
//	experiments -all -workers 8 # bound intra-experiment parallelism
//
// Two levels of parallelism compose: -parallel runs whole experiments
// concurrently, -workers fans each experiment's independent simulation
// cells (config x policy x seed) across a worker pool. Tables are
// reproducible: the same seed yields the same numbers whatever the
// worker count, and results always print in request order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"potsim/internal/checkpoint"
	"potsim/internal/expt"
	"potsim/internal/guard"
	"potsim/internal/prof"
	"potsim/internal/results"
)

type idList []string

func (l *idList) String() string { return strings.Join(*l, ",") }

func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	if errors.Is(err, context.Canceled) {
		// Interrupted by SIGINT/SIGTERM: partial tables and the journal
		// were flushed; re-run with -resume to pick up where this left off.
		os.Exit(130)
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var ids idList
	fs.Var(&ids, "e", "experiment id (repeatable), e.g. -e E1 -e E4")
	all := fs.Bool("all", false, "run every experiment")
	parallel := fs.Int("parallel", 1, "experiments to run concurrently (results still print in order)")
	workers := fs.Int("workers", 0, "simulation cells per experiment to run concurrently (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 0, "epoch-integrator shards inside each cell (0 or 1 = serial; results are byte-identical at any count)")
	quick := fs.Bool("quick", false, "short horizons and single seed")
	seed := fs.Uint64("seed", 0, "base seed offset for replication")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV tables into")
	storeDir := fs.String("store", "", "root directory for columnar result stores (one per experiment); with -csv, the CSV is exported from the store")
	progress := fs.Bool("progress", false, "log per-cell completion to stderr")
	guardPolicy := fs.String("guard", "", "runtime invariant policy: panic, error or log (default error)")
	chaosSpec := fs.String("chaos", "", "inject failures: mode[:labelsubstring] with mode panic|hang|nan|error|flaky (diagnostics)")
	cellTimeout := fs.Duration("cell-timeout", 0, "wall-clock deadline per simulation cell (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts for transiently failing cells")
	retryBackoff := fs.Duration("retry-backoff", 0, "pause before the first retry (doubles per retry)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for durable suite state: per-experiment journals of completed cells and mid-cell snapshots")
	ckptEvery := fs.Int64("checkpoint-every", 0, "epochs between mid-cell snapshots (0 = journal whole cells only; needs -checkpoint-dir)")
	resume := fs.Bool("resume", false, "skip cells journaled as complete in -checkpoint-dir and continue interrupted cells from their snapshots")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	execTrace := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
		}
	}()
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}
	if _, err := guard.ParsePolicy(*guardPolicy); err != nil {
		return err
	}
	chaos, err := expt.ParseChaos(*chaosSpec)
	if err != nil {
		return err
	}
	if *all {
		ids = expt.IDs()
	}
	if len(ids) == 0 {
		return fmt.Errorf("nothing to run: pass -all or -e <id> (have %v)", expt.IDs())
	}
	if *parallel < 1 {
		*parallel = 1
	}
	if *workers < 0 {
		*workers = 0
	}
	if *shards < 0 {
		*shards = 0
	}

	// SIGINT/SIGTERM cancel the batch context: in-flight cells stop at
	// their next epoch boundary, workers drain, journals and partial
	// tables flush, and the process exits with code 130.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// cells tracks each experiment's batch size as reported by the
	// runner's progress callback (experiments run concurrently).
	var mu sync.Mutex
	cells := map[string]int{}
	runner := &expt.Runner{
		Quick: *quick, BaseSeed: *seed, Workers: *workers, Shards: *shards, Ctx: ctx,
		GuardPolicy: *guardPolicy, Chaos: chaos,
		CellTimeout: *cellTimeout, Retries: *retries, RetryBackoff: *retryBackoff,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
	}
	runner.Progress = func(id string, done, total int) {
		mu.Lock()
		cells[id] = total
		mu.Unlock()
		if *progress {
			fmt.Fprintf(os.Stderr, "[%s cell %d/%d]\n", id, done, total)
		}
	}

	type outcome struct {
		res     *expt.Result
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	sem := make(chan struct{}, *parallel)
	for i, id := range ids {
		go func(i int, id string) {
			defer close(ready[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := runner.Run(id)
			outcomes[i] = outcome{res: res, err: err, elapsed: time.Since(start)}
		}(i, id)
	}

	// Stream results in request order as they become ready. A failed
	// experiment degrades instead of disappearing: its partial table
	// (failed aggregation groups marked n/a) still prints and its CSV is
	// still flushed, every failed cell is named on stderr, and the exit
	// code stays non-zero.
	var errs []error
	var failed []string
	for i, id := range ids {
		<-ready[i]
		o := outcomes[i]
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, o.err)
			errs = append(errs, fmt.Errorf("%s: %w", id, o.err))
			failed = append(failed, id)
			if o.res == nil {
				continue
			}
		}
		fmt.Println(o.res.Render())
		mu.Lock()
		n := cells[o.res.ID]
		mu.Unlock()
		fmt.Printf("[%s finished in %v, %d cells]\n\n",
			o.res.ID, o.elapsed.Round(time.Millisecond), n)
		if *storeDir != "" && o.res.Table != nil {
			if err := expt.SaveStore(*storeDir, o.res); err != nil {
				errs = append(errs, err)
			}
		}
		if *csvDir != "" && o.res.Table != nil {
			if err := writeCSV(*csvDir, *storeDir, o.res); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments degraded or failed: %s\n",
			len(failed), len(ids), strings.Join(failed, ", "))
	}
	if ctx.Err() != nil {
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr,
				"experiments: interrupted; completed cells are journaled in %s — re-run with -resume to continue\n", *ckptDir)
		}
		errs = append(errs, fmt.Errorf("interrupted: %w", ctx.Err()))
	}
	return errors.Join(errs...)
}

// writeCSV flushes one experiment's table atomically (temp file +
// rename), so a reader — or a crash mid-write — can never observe a
// half-written results file. When a result store was written, the CSV
// is an *export* of the store — the segments are the system of record
// and the bytes are identical to the direct rendering by the store's
// round-trip contract.
func writeCSV(dir, storeRoot string, res *expt.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csv := []byte(res.Table.CSV())
	if storeRoot != "" {
		exported, err := results.ExportCSV(expt.StorePath(storeRoot, res.ID))
		if err != nil {
			return fmt.Errorf("export %s from store: %w", res.ID, err)
		}
		csv = exported
	}
	path := filepath.Join(dir, strings.ToLower(res.ID)+".csv")
	return checkpoint.WriteFileAtomic(path, csv, 0o644)
}
