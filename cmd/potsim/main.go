// Command potsim runs one manycore simulation and prints a report.
//
// Usage:
//
//	potsim [flags]
//
// Examples:
//
//	potsim -mesh 8x8 -policy pots -mapper TUM -horizon 500ms
//	potsim -policy naive -tdp-frac 0.25 -seed 7 -trace
//	potsim -node 22nm -faults -horizon 1s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"potsim/internal/core"
	"potsim/internal/sim"
	"potsim/internal/tech"
	"potsim/internal/viz"
	"potsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "potsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("potsim", flag.ContinueOnError)
	var (
		mesh     = fs.String("mesh", "8x8", "mesh geometry WxH")
		node     = fs.String("node", "16nm", "technology node (45nm/32nm/22nm/16nm)")
		policy   = fs.String("policy", "pots", "test policy: pots|notest|naive|periodic")
		mapper   = fs.String("mapper", "TUM", "mapping policy: FF|NN|CoNA|TUM")
		horizon  = fs.Duration("horizon", 500*time.Millisecond, "simulated horizon")
		iat      = fs.Duration("interarrival", 2*time.Millisecond, "mean application interarrival")
		tdpFrac  = fs.Float64("tdp-frac", 0.35, "TDP as a fraction of theoretical chip peak power")
		tdpWatts = fs.Float64("tdp-watts", 0, "explicit TDP in watts (overrides -tdp-frac)")
		levels   = fs.Int("levels", 8, "DVFS operating points")
		seed     = fs.Uint64("seed", 1, "root random seed")
		faults   = fs.Bool("faults", false, "enable stochastic fault injection")
		nocMode  = fs.String("noc", "txn", "interconnect mode: txn (analytic) or flit (co-simulated)")
		decomm   = fs.Bool("decommission", false, "retire cores whose faults are detected")
		cfgPath  = fs.String("config", "", "JSON config file (flags override its values)")
		wlTrace  = fs.String("workload", "", "replay a recorded workload trace (JSONL)")
		recTrace = fs.String("record", "", "record this run's arrivals as a JSONL trace")
		bursty   = fs.Bool("bursty", false, "modulate arrivals with on/off burst phases")
		topology = fs.String("topology", "mesh", "interconnect topology: mesh or torus")
		events   = fs.String("events", "", "write the run's event log as JSONL to this file")
		trace    = fs.Bool("trace", false, "print the power trace")
		guardPol = fs.String("guard", "", "runtime invariant policy: panic, error or log (default error)")
		jsonOut  = fs.Bool("json", false, "emit the full report as JSON instead of text")
		hist     = fs.Bool("levels-hist", false, "print the per-level test histogram")
		heat     = fs.Bool("heatmaps", false, "print per-core stress/test/utilization heatmaps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	if *cfgPath != "" {
		blob, err := os.ReadFile(*cfgPath)
		if err != nil {
			return err
		}
		// Strict decoding: a misspelled key silently falling back to its
		// default would invalidate a whole study, so name it instead.
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", *cfgPath, err)
		}
	}
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %v", *mesh, err)
	}
	cfg.Width, cfg.Height = w, h
	n, err := tech.ByName(*node)
	if err != nil {
		return err
	}
	cfg.Node = n
	cfg.TestPolicy = core.TestPolicyKind(strings.ToLower(*policy))
	cfg.MapperName = *mapper
	cfg.Horizon = sim.FromDuration(*horizon)
	cfg.MeanInterarrival = sim.FromDuration(*iat)
	cfg.TDPFraction = *tdpFrac
	cfg.TDPWatts = *tdpWatts
	cfg.DVFSLevels = *levels
	cfg.Seed = *seed
	cfg.EnableFaults = *faults
	cfg.NoCMode = *nocMode
	cfg.DecommissionOnDetect = *decomm
	cfg.TracePath = *wlTrace
	cfg.RecordTracePath = *recTrace
	cfg.NoCTopology = *topology
	if *guardPol != "" {
		cfg.GuardPolicy = *guardPol
	}
	if *events != "" && cfg.EventLogCapacity == 0 {
		cfg.EventLogCapacity = 1 << 20
	}
	if *bursty {
		cfg.Burst = workload.DefaultBurstiness()
	}

	sys, err := core.New(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := sys.Run()
	if err != nil {
		return err
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		werr := sys.Events().WriteJSONL(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	if *jsonOut {
		blob, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
		return nil
	}
	fmt.Print(rep.Summary())
	fmt.Printf("  wallclock: %v\n", time.Since(start).Round(time.Millisecond))
	if *hist {
		fmt.Println("\nCompleted tests per DVFS level:")
		fmt.Print(rep.LevelHistogram())
	}
	if *trace {
		fmt.Println("\nt(ms)  workload(W)  test(W)  TDP(W)")
		for _, p := range rep.Trace {
			fmt.Printf("%8.2f  %8.3f  %8.3f  %8.3f\n",
				p.At.Millis(), p.Workload, p.Test, p.Budget)
		}
	}
	if *heat {
		fmt.Println()
		for _, hm := range []struct {
			title string
			vals  []float64
		}{
			{"aging stress per core:", rep.PerCoreStress},
			{"utilization (EWMA) per core:", rep.PerCoreUtil},
			{"idle fraction per core:", rep.PerCoreIdleFrac},
		} {
			out, err := viz.Heatmap(hm.title, cfg.Width, cfg.Height, hm.vals)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
		if len(rep.PerCoreTests) > 0 {
			out, err := viz.HeatmapInts("completed tests per core:", cfg.Width, cfg.Height, rep.PerCoreTests)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	return nil
}
