// Command potsim runs one manycore simulation and prints a report.
//
// Usage:
//
//	potsim [flags]
//
// Examples:
//
//	potsim -mesh 8x8 -policy pots -mapper TUM -horizon 500ms
//	potsim -policy naive -tdp-frac 0.25 -seed 7 -trace
//	potsim -node 22nm -faults -horizon 1s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"potsim/internal/checkpoint"
	"potsim/internal/core"
	"potsim/internal/prof"
	"potsim/internal/sim"
	"potsim/internal/tech"
	"potsim/internal/viz"
	"potsim/internal/workload"
)

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "potsim:", err)
	if errors.Is(err, core.ErrInterrupted) {
		// Graceful SIGINT/SIGTERM shutdown: the run stopped at an epoch
		// boundary (and, with -checkpoint-dir, flushed a final snapshot).
		os.Exit(130)
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("potsim", flag.ContinueOnError)
	var (
		mesh     = fs.String("mesh", "8x8", "mesh geometry WxH")
		node     = fs.String("node", "16nm", "technology node (45nm/32nm/22nm/16nm)")
		policy   = fs.String("policy", "pots", "test policy: pots|notest|naive|periodic")
		mapper   = fs.String("mapper", "TUM", "mapping policy: FF|NN|CoNA|TUM")
		horizon  = fs.Duration("horizon", 500*time.Millisecond, "simulated horizon")
		iat      = fs.Duration("interarrival", 2*time.Millisecond, "mean application interarrival")
		tdpFrac  = fs.Float64("tdp-frac", 0.35, "TDP as a fraction of theoretical chip peak power")
		tdpWatts = fs.Float64("tdp-watts", 0, "explicit TDP in watts (overrides -tdp-frac)")
		levels   = fs.Int("levels", 8, "DVFS operating points")
		shards   = fs.Int("shards", 0, "epoch-integrator shards (0 or 1 = serial; results are byte-identical at any count)")
		seed     = fs.Uint64("seed", 1, "root random seed")
		faults   = fs.Bool("faults", false, "enable stochastic fault injection")
		nocMode  = fs.String("noc", "txn", "interconnect mode: txn (analytic) or flit (co-simulated)")
		decomm   = fs.Bool("decommission", false, "retire cores whose faults are detected")
		cfgPath  = fs.String("config", "", "JSON config file (flags override its values)")
		wlTrace  = fs.String("workload", "", "replay a recorded workload trace (JSONL)")
		recTrace = fs.String("record", "", "record this run's arrivals as a JSONL trace")
		bursty   = fs.Bool("bursty", false, "modulate arrivals with on/off burst phases")
		topology = fs.String("topology", "mesh", "interconnect topology: mesh or torus")
		events   = fs.String("events", "", "write the run's event log as JSONL to this file")
		trace    = fs.Bool("trace", false, "print the power trace")
		guardPol = fs.String("guard", "", "runtime invariant policy: panic, error or log (default error)")
		jsonOut  = fs.Bool("json", false, "emit the full report as JSON instead of text")
		hist     = fs.Bool("levels-hist", false, "print the per-level test histogram")
		heat     = fs.Bool("heatmaps", false, "print per-core stress/test/utilization heatmaps")
		ckptDir  = fs.String("checkpoint-dir", "", "directory for the run's durable snapshot (interrupts become resumable)")
		ckptEvry = fs.Int64("checkpoint-every", 0, "epochs between periodic snapshots (0 = snapshot only on interrupt; needs -checkpoint-dir)")
		resume   = fs.Bool("resume", false, "continue from the snapshot in -checkpoint-dir")
		// -trace already means the power trace here, so the runtime
		// execution trace is -exectrace (cmd/experiments uses -trace).
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		execTr  = fs.String("exectrace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf, *execTr)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "potsim:", perr)
		}
	}()

	cfg := core.DefaultConfig()
	if *cfgPath != "" {
		blob, err := os.ReadFile(*cfgPath)
		if err != nil {
			return err
		}
		// Strict decoding: a misspelled key silently falling back to its
		// default would invalidate a whole study, so name it instead.
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", *cfgPath, err)
		}
	}
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %v", *mesh, err)
	}
	cfg.Width, cfg.Height = w, h
	n, err := tech.ByName(*node)
	if err != nil {
		return err
	}
	cfg.Node = n
	cfg.TestPolicy = core.TestPolicyKind(strings.ToLower(*policy))
	cfg.MapperName = *mapper
	cfg.Horizon = sim.FromDuration(*horizon)
	cfg.MeanInterarrival = sim.FromDuration(*iat)
	cfg.TDPFraction = *tdpFrac
	cfg.TDPWatts = *tdpWatts
	cfg.DVFSLevels = *levels
	cfg.Shards = *shards
	cfg.Seed = *seed
	cfg.EnableFaults = *faults
	cfg.NoCMode = *nocMode
	cfg.DecommissionOnDetect = *decomm
	cfg.TracePath = *wlTrace
	cfg.RecordTracePath = *recTrace
	cfg.NoCTopology = *topology
	if *guardPol != "" {
		cfg.GuardPolicy = *guardPol
	}
	if *events != "" && cfg.EventLogCapacity == 0 {
		cfg.EventLogCapacity = 1 << 20
	}
	if *bursty {
		cfg.Burst = workload.DefaultBurstiness()
	}

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}

	sys, err := core.New(cfg)
	if err != nil {
		return err
	}

	var ckptPath string
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		ckptPath = filepath.Join(*ckptDir, "potsim.ckpt")
		// Cadence 0 still flushes a final snapshot on interrupt, which is
		// all a resumable Ctrl-C needs.
		sys.CheckpointEvery(*ckptEvry, func(snap *core.Snapshot) error {
			return checkpoint.Save(ckptPath, core.SnapshotKind, core.SnapshotVersion, snap)
		})
	}
	if *resume {
		var snap core.Snapshot
		err := checkpoint.Load(ckptPath, core.SnapshotKind, core.SnapshotVersion, &snap)
		switch {
		case err == nil:
			if err := sys.Restore(&snap); err != nil {
				return err
			}
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "potsim: no snapshot at %s; starting fresh\n", ckptPath)
		default:
			return err
		}
	}

	// SIGINT/SIGTERM request a graceful stop: the run ends at its next
	// epoch boundary, flushing the final snapshot when one is configured.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		sys.RequestStop()
	}()

	start := time.Now()
	rep, err := sys.Run()
	if err != nil {
		if errors.Is(err, core.ErrInterrupted) && ckptPath != "" {
			fmt.Fprintf(os.Stderr,
				"potsim: interrupted; state saved to %s — continue with -checkpoint-dir %s -resume\n",
				ckptPath, *ckptDir)
		}
		return err
	}
	if ckptPath != "" {
		// The run completed: its snapshot must not feed a later -resume.
		if rmErr := os.Remove(ckptPath); rmErr != nil && !os.IsNotExist(rmErr) {
			return rmErr
		}
	}
	if *events != "" {
		var buf bytes.Buffer
		if err := sys.Events().WriteJSONL(&buf); err != nil {
			return err
		}
		// Atomic: a crash mid-write can never leave a torn event log.
		if err := checkpoint.WriteFileAtomic(*events, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if *jsonOut {
		blob, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
		return nil
	}
	fmt.Print(rep.Summary())
	fmt.Printf("  wallclock: %v\n", time.Since(start).Round(time.Millisecond))
	if *hist {
		fmt.Println("\nCompleted tests per DVFS level:")
		fmt.Print(rep.LevelHistogram())
	}
	if *trace {
		fmt.Println("\nt(ms)  workload(W)  test(W)  TDP(W)")
		for _, p := range rep.Trace {
			fmt.Printf("%8.2f  %8.3f  %8.3f  %8.3f\n",
				p.At.Millis(), p.Workload, p.Test, p.Budget)
		}
	}
	if *heat {
		fmt.Println()
		for _, hm := range []struct {
			title string
			vals  []float64
		}{
			{"aging stress per core:", rep.PerCoreStress},
			{"utilization (EWMA) per core:", rep.PerCoreUtil},
			{"idle fraction per core:", rep.PerCoreIdleFrac},
		} {
			out, err := viz.Heatmap(hm.title, cfg.Width, cfg.Height, hm.vals)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
		if len(rep.PerCoreTests) > 0 {
			out, err := viz.HeatmapInts("completed tests per core:", cfg.Width, cfg.Height, rep.PerCoreTests)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	return nil
}
