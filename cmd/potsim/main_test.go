package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"potsim/internal/core"
)

func TestRunDefaultFlags(t *testing.T) {
	if err := run([]string{"-horizon", "20ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-mesh", "banana"},
		{"-node", "7nm"},
		{"-policy", "nope", "-horizon", "10ms"},
		{"-mapper", "nope", "-horizon", "10ms"},
		{"-noc", "quantum", "-horizon", "10ms"},
		{"-tdp-frac", "0", "-horizon", "10ms"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithTraceAndHistogram(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-trace", "-levels-hist"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run([]string{"-horizon", "10ms", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConfigFile(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width, cfg.Height = 6, 6
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path, "-mesh", "6x6", "-horizon", "10ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", "/does/not/exist.json"}); err == nil {
		t.Error("missing config file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Error("unparseable config accepted")
	}
}

func TestRunHeatmaps(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-heatmaps"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordThenReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "wl.jsonl")
	if err := run([]string{"-horizon", "20ms", "-record", trace}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-horizon", "20ms", "-workload", trace}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBursty(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-bursty"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEventsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := run([]string{"-horizon", "20ms", "-events", path}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Error("empty event log")
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(string(blob), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("event log not JSONL: %v", err)
	}
}

func TestRunTorusTopology(t *testing.T) {
	if err := run([]string{"-horizon", "15ms", "-topology", "torus"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", "donut"}); err == nil {
		t.Error("bogus topology accepted")
	}
}

// TestRunConfigStrictKeys: a misspelled config key must be rejected by
// name, not silently fall back to the default value.
func TestRunConfigStrictKeys(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "..", "configs", "default-16nm.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The shipped config must itself pass strict decoding.
	if err := run([]string{"-config",
		filepath.Join("..", "..", "configs", "default-16nm.json"),
		"-horizon", "10ms"}); err != nil {
		t.Fatalf("shipped config rejected under strict decoding: %v", err)
	}
	typo := strings.Replace(string(blob), `"TDPFraction"`, `"TDPFracton"`, 1)
	if !strings.Contains(typo, "TDPFracton") {
		t.Fatal("test setup: typo not applied")
	}
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(typo), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-config", path, "-horizon", "10ms"})
	if err == nil {
		t.Fatal("misspelled key accepted")
	}
	if !strings.Contains(err.Error(), "TDPFracton") {
		t.Errorf("error does not name the unknown key: %v", err)
	}
}

func TestRunGuardFlag(t *testing.T) {
	if err := run([]string{"-horizon", "10ms", "-guard", "log"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-horizon", "10ms", "-guard", "shrug"}); err == nil {
		t.Error("bogus guard policy accepted")
	}
}
