package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"potsim/internal/core"
)

func TestRunDefaultFlags(t *testing.T) {
	if err := run([]string{"-horizon", "20ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-mesh", "banana"},
		{"-node", "7nm"},
		{"-policy", "nope", "-horizon", "10ms"},
		{"-mapper", "nope", "-horizon", "10ms"},
		{"-noc", "quantum", "-horizon", "10ms"},
		{"-tdp-frac", "0", "-horizon", "10ms"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithTraceAndHistogram(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-trace", "-levels-hist"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run([]string{"-horizon", "10ms", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConfigFile(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width, cfg.Height = 6, 6
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path, "-mesh", "6x6", "-horizon", "10ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", "/does/not/exist.json"}); err == nil {
		t.Error("missing config file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Error("unparseable config accepted")
	}
}

func TestRunHeatmaps(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-heatmaps"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordThenReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "wl.jsonl")
	if err := run([]string{"-horizon", "20ms", "-record", trace}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-horizon", "20ms", "-workload", trace}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBursty(t *testing.T) {
	if err := run([]string{"-horizon", "20ms", "-bursty"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEventsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := run([]string{"-horizon", "20ms", "-events", path}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Error("empty event log")
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(string(blob), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("event log not JSONL: %v", err)
	}
}

func TestRunTorusTopology(t *testing.T) {
	if err := run([]string{"-horizon", "15ms", "-topology", "torus"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", "donut"}); err == nil {
		t.Error("bogus topology accepted")
	}
}

// TestRunConfigStrictKeys: a misspelled config key must be rejected by
// name, not silently fall back to the default value.
func TestRunConfigStrictKeys(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "..", "configs", "default-16nm.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The shipped config must itself pass strict decoding.
	if err := run([]string{"-config",
		filepath.Join("..", "..", "configs", "default-16nm.json"),
		"-horizon", "10ms"}); err != nil {
		t.Fatalf("shipped config rejected under strict decoding: %v", err)
	}
	typo := strings.Replace(string(blob), `"TDPFraction"`, `"TDPFracton"`, 1)
	if !strings.Contains(typo, "TDPFracton") {
		t.Fatal("test setup: typo not applied")
	}
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(typo), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-config", path, "-horizon", "10ms"})
	if err == nil {
		t.Fatal("misspelled key accepted")
	}
	if !strings.Contains(err.Error(), "TDPFracton") {
		t.Errorf("error does not name the unknown key: %v", err)
	}
}

func TestRunGuardFlag(t *testing.T) {
	if err := run([]string{"-horizon", "10ms", "-guard", "log"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-horizon", "10ms", "-guard", "shrug"}); err == nil {
		t.Error("bogus guard policy accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a file and returns
// what fn printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	ferr := fn()
	os.Stdout = old
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	return string(blob), ferr
}

// TestInterruptSavesSnapshotAndResumeMatches: a SIGINT mid-run stops the
// simulation gracefully, saves a resumable snapshot, and a -resume run
// produces the exact JSON report of an uninterrupted run, then removes
// the snapshot.
func TestInterruptSavesSnapshotAndResumeMatches(t *testing.T) {
	args := []string{"-horizon", "2s", "-seed", "5", "-json"}
	golden, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	withCkpt := append(append([]string{}, args...), "-checkpoint-dir", dir)
	errc := make(chan error, 1)
	go func() { errc <- run(withCkpt) }()
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if ierr := <-errc; !errors.Is(ierr, core.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want core.ErrInterrupted", ierr)
	}
	snap := filepath.Join(dir, "potsim.ckpt")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("interrupt flushed no snapshot: %v", err)
	}

	resumed, err := captureStdout(t, func() error {
		return run(append(append([]string{}, withCkpt...), "-resume"))
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if resumed != golden {
		t.Error("resumed report differs from uninterrupted run")
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Error("completed run left its snapshot behind")
	}
}

func TestResumeFlagRequiresCheckpointDir(t *testing.T) {
	if err := run([]string{"-horizon", "10ms", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint-dir accepted")
	}
}

// TestResumeWithoutSnapshotStartsFresh: -resume with an empty
// checkpoint directory is not an error — the run simply starts over.
func TestResumeWithoutSnapshotStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-horizon", "10ms",
		"-checkpoint-dir", dir, "-resume"}); err != nil {
		t.Fatal(err)
	}
}
