package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"potsim/internal/service"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{"-data-dir", "/tmp/x", "-queue", "3",
		"-workers", "5", "-shards", "2", "-checkpoint-every", "-1",
		"-max-per-tenant", "-1", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dataDir != "/tmp/x" || o.queue != 3 || o.workers != 5 ||
		o.shards != 2 || o.ckptEvery != -1 || o.maxPerTenant != -1 ||
		o.drainTimeout != 5*time.Second {
		t.Fatalf("parsed options: %+v", o)
	}
	if o.addr != "127.0.0.1:8080" {
		t.Fatalf("default addr: %q", o.addr)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{}, // missing -data-dir
		{"-data-dir", "/tmp/x", "-queue", "0"},
		{"-data-dir", "/tmp/x", "-workers", "0"},
		{"-data-dir", "/tmp/x", "-shards", "-2"},
		{"-data-dir", "/tmp/x", "-drain-timeout", "0s"},
		{"-data-dir", "/tmp/x", "-no-such-flag"},
	}
	for _, args := range cases {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// buildDaemon compiles potsimd once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "potsimd")
	cmd := exec.Command("go", "build", "-o", bin, "potsim/cmd/potsimd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building potsimd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running potsimd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port

	lastID       string // from the most recent submit
	lastCacheHit bool
}

// startDaemon launches potsimd on an ephemeral port and waits until it
// answers /readyz.
func startDaemon(t *testing.T, bin, dataDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-data-dir", dataDir,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if blob, err := os.ReadFile(addrFile); err == nil && len(blob) > 0 {
			base := "http://" + strings.TrimSpace(string(blob))
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return &daemon{cmd: cmd, base: base}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemon) submit(t *testing.T, body string) service.State {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, blob)
	}
	var sr struct {
		ID       string        `json:"id"`
		State    service.State `json:"state"`
		CacheHit bool          `json:"cacheHit"`
	}
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	d.lastID, d.lastCacheHit = sr.ID, sr.CacheHit
	return sr.State
}

func (d *daemon) status(t *testing.T, id string) service.Status {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) waitDone(t *testing.T, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := d.status(t, id)
		switch st.State {
		case service.StateDone:
			resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result: %d %s", resp.StatusCode, blob)
			}
			return blob
		case service.StateFailed, service.StateCanceled:
			t.Fatalf("job %s settled as %q: %s", id, st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestDaemonSurvivesSIGKILL is the acceptance test of the PR: kill -9
// the daemon mid-job, restart it on the same data directory, and the
// finished result is byte-identical to a never-interrupted run — and an
// identical re-submission afterwards is served from the cache.
func TestDaemonSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildDaemon(t)
	spec := `{"kind": "sim", "config": {"Horizon": 1500000000, "Seed": 42}}`

	// Golden: an uninterrupted run in its own data dir.
	goldenDir := t.TempDir()
	g := startDaemon(t, bin, goldenDir)
	g.submit(t, spec)
	golden := g.waitDone(t, g.lastID)
	_ = g.cmd.Process.Signal(syscall.SIGTERM)
	_, _ = g.cmd.Process.Wait()

	// Victim: SIGKILL mid-job. Frequent snapshots so the kill lands
	// well past the last checkpoint with plenty of run left.
	dataDir := t.TempDir()
	d1 := startDaemon(t, bin, dataDir, "-checkpoint-every", "50")
	d1.submit(t, spec)
	id := d1.lastID
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := d1.status(t, id)
		if st.Progress.Epochs >= 2000 {
			break
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			t.Fatalf("job settled as %q before the kill", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// Restart on the same directory: the job is recovered, resumed from
	// its last snapshot, and finishes byte-identically.
	d2 := startDaemon(t, bin, dataDir, "-checkpoint-every", "50")
	st := d2.status(t, id)
	if st.ID != id {
		t.Fatalf("job %s not recovered: %+v", id, st)
	}
	resumed := d2.waitDone(t, id)
	if !bytes.Equal(golden, resumed) {
		t.Fatalf("resumed result differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(golden))
	}

	// An identical submission now comes straight from the cache.
	d2.submit(t, spec)
	if !d2.lastCacheHit {
		t.Fatal("re-submission after resume missed the cache")
	}
	cached := d2.waitDone(t, d2.lastID)
	if !bytes.Equal(golden, cached) {
		t.Fatal("cached result differs from uninterrupted run")
	}
	var stats service.Stats
	resp, err := http.Get(d2.base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CacheHits < 1 || stats.Recovered != 1 {
		t.Fatalf("stats after resume: %+v", stats)
	}
}

// TestDaemonSIGTERMDrainsCleanly: with no running jobs a SIGTERM exits
// zero promptly.
func TestDaemonSIGTERMDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, t.TempDir())
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
}
