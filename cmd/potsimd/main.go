// Command potsimd is the simulation daemon: an HTTP/JSON service that
// accepts simulation and experiment-suite jobs, runs them with bounded
// admission, per-job watchdogs and a content-addressed result cache,
// and survives being killed at any point — durable job state lives
// under -data-dir and a restart resumes every unfinished job to a
// byte-identical result.
//
// Usage:
//
//	potsimd -data-dir /var/lib/potsimd
//	potsimd -addr 127.0.0.1:8080 -queue 32 -workers 4 -max-per-tenant 8
//
// Submit a simulation:
//
//	curl -XPOST localhost:8080/v1/jobs -d '{"kind":"sim","config":{"Horizon":500000000}}'
//
// SIGINT/SIGTERM drain the daemon: admission stops (503 on /readyz and
// new submissions), running jobs checkpoint and stop, and the process
// exits once everything settled (or -drain-timeout elapsed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"potsim/internal/checkpoint"
	"potsim/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "potsimd:", err)
		os.Exit(1)
	}
}

// options carries the parsed command line; split from serving so tests
// can exercise flag handling without opening sockets.
type options struct {
	addr         string
	addrFile     string
	dataDir      string
	queue        int
	workers      int
	cellWorkers  int
	maxPerTenant int
	ckptEvery    int64
	cellTimeout  time.Duration
	retries      int
	drainTimeout time.Duration
	shards       int
}

func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("potsimd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file (atomic; for scripts using -addr :0)")
	fs.StringVar(&o.dataDir, "data-dir", "", "durable state directory (required)")
	fs.IntVar(&o.queue, "queue", 16, "admission queue depth; a full queue answers 429")
	fs.IntVar(&o.workers, "workers", 2, "jobs executed concurrently")
	fs.IntVar(&o.cellWorkers, "cell-workers", 0, "cell parallelism inside a suite job (0 = GOMAXPROCS)")
	fs.IntVar(&o.maxPerTenant, "max-per-tenant", 4, "per-tenant in-flight job cap (-1 = unlimited)")
	fs.Int64Var(&o.ckptEvery, "checkpoint-every", 200, "snapshot cadence in epochs (-1 disables periodic snapshots)")
	fs.DurationVar(&o.cellTimeout, "cell-timeout", 0, "per-attempt watchdog for jobs and suite cells (0 = none)")
	fs.IntVar(&o.retries, "retries", 0, "retry budget for failed attempts")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for jobs to checkpoint")
	fs.IntVar(&o.shards, "shards", 0, "epoch-integrator shards per simulation (0 = serial; results are identical at any value)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.dataDir == "" {
		return o, errors.New("-data-dir is required: the daemon's crash tolerance lives there")
	}
	if o.queue < 1 {
		return o, errors.New("-queue must be >= 1")
	}
	if o.workers < 1 {
		return o, errors.New("-workers must be >= 1")
	}
	if o.shards < 0 {
		return o, errors.New("-shards must be >= 0")
	}
	if o.drainTimeout <= 0 {
		return o, errors.New("-drain-timeout must be positive")
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}

	srv, err := service.New(service.Config{
		DataDir:         o.dataDir,
		QueueDepth:      o.queue,
		JobWorkers:      o.workers,
		CellWorkers:     o.cellWorkers,
		MaxPerTenant:    o.maxPerTenant,
		CheckpointEvery: o.ckptEvery,
		CellTimeout:     o.cellTimeout,
		Retries:         o.retries,
		Shards:          o.shards,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "potsimd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.addrFile != "" {
		// Atomic so watchers never read a half-written address.
		if err := checkpoint.WriteFileAtomic(o.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "potsimd: serving on %s (data dir %s)\n", ln.Addr(), o.dataDir)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stopSignals() // a second signal kills the process the default way

	// Graceful shutdown: stop admitting, checkpoint running jobs, then
	// close the listener. Durable state is consistent at every point, so
	// even a drain that times out loses no settled work.
	fmt.Fprintln(os.Stderr, "potsimd: draining (jobs are checkpointing; repeat the signal to kill)")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if serr := httpSrv.Shutdown(drainCtx); serr != nil && drainErr == nil {
		drainErr = serr
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete after %v: %w (state on disk is consistent; restart resumes)", o.drainTimeout, drainErr)
	}
	fmt.Fprintln(os.Stderr, "potsimd: drained; unfinished jobs resume on next start")
	return nil
}
