package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "sweep.csv")
	err := run([]string{"-tdp", "0.3,0.5", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

// TestRunShardedSweepMatchesSerial: -shards threads through to
// core.Config.Shards, and by the sharded-epoch determinism contract the
// sweep CSV is byte-identical to the serial one.
func TestRunShardedSweepMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.csv")
	sharded := filepath.Join(dir, "sharded.csv")
	base := []string{"-tdp", "0.35", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv"}
	if err := run(append(append([]string{}, base...), serial)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{"-shards", "4"}, base...), sharded)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("sharded sweep differs from serial:\nserial:\n%s\nsharded:\n%s", a, b)
	}
}

func TestRunArgErrors(t *testing.T) {
	cases := [][]string{
		{"-tdp", "banana"},
		{"-tdp", "1.5"},
		{"-interval", "zzz"},
		{"-seeds", "0"},
		{"-shards", "-1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
