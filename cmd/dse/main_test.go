package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "sweep.csv")
	err := run([]string{"-tdp", "0.3,0.5", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

func TestRunArgErrors(t *testing.T) {
	cases := [][]string{
		{"-tdp", "banana"},
		{"-tdp", "1.5"},
		{"-interval", "zzz"},
		{"-seeds", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
