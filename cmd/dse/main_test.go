package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "sweep.csv")
	err := run([]string{"-tdp", "0.3,0.5", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

// TestRunShardedSweepMatchesSerial: -shards threads through to
// core.Config.Shards, and by the sharded-epoch determinism contract the
// sweep CSV is byte-identical to the serial one.
func TestRunShardedSweepMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.csv")
	sharded := filepath.Join(dir, "sharded.csv")
	base := []string{"-tdp", "0.35", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv"}
	if err := run(append(append([]string{}, base...), serial)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{"-shards", "4"}, base...), sharded)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("sharded sweep differs from serial:\nserial:\n%s\nsharded:\n%s", a, b)
	}
}

func TestRunArgErrors(t *testing.T) {
	cases := [][]string{
		{"-tdp", "banana"},
		{"-tdp", "1.5"},
		{"-interval", "zzz"},
		{"-seeds", "0"},
		{"-shards", "-1"},
		{"-resume"}, // resume without a campaign
		{"-campaign", "does-not-exist.json", "-dir", "x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestParseFloatList: strconv.ParseFloat on whole tokens — trailing
// garbage, empty tokens, dangling exponents and non-finite values must
// all be rejected, not silently truncated the way Sscanf("%g") did.
func TestParseFloatList(t *testing.T) {
	cases := []struct {
		list string
		want []float64
		ok   bool
	}{
		{"0.25,0.35,0.50", []float64{0.25, 0.35, 0.50}, true},
		{" 0.5 , 1 ", []float64{0.5, 1}, true},
		{"1e-1", []float64{0.1}, true},
		{"0.5x", nil, false}, // trailing garbage (Sscanf parsed this as 0.5)
		{"x0.5", nil, false}, // leading garbage
		{"", nil, false},     // empty token
		{"0.5,", nil, false}, // trailing empty token
		{"0.5,,1", nil, false},
		{"1e", nil, false},    // dangling exponent
		{"1e999", nil, false}, // out of range
		{"-1e999", nil, false},
		{"NaN", nil, false},
		{"+Inf", nil, false},
		{"banana", nil, false},
	}
	for _, c := range cases {
		got, err := parseFloatList("-tdp", c.list)
		if c.ok != (err == nil) {
			t.Errorf("parseFloatList(%q): err = %v, want ok=%v", c.list, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseFloatList(%q) = %v, want %v", c.list, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseFloatList(%q)[%d] = %v, want %v", c.list, i, got[i], c.want[i])
			}
		}
	}
}

// TestRunCampaignMode drives the full CLI path: spec file in, frontier
// CSV + quarantine report out, with a chaos cell quarantined and the
// run still exiting cleanly.
func TestRunCampaignMode(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
  "name": "cli",
  "meshes": ["4x4"],
  "nodes": ["16nm"],
  "tdpFractions": [0.4],
  "baseIntervalsMS": [20],
  "policies": ["pots", "notest"],
  "seeds": 2,
  "horizonMS": 30
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(dir, "state")
	csv := filepath.Join(dir, "frontier.csv")
	quar := filepath.Join(dir, "quarantine.json")
	status := filepath.Join(dir, "status.json")
	err := run([]string{"-campaign", spec, "-dir", state, "-workers", "2",
		"-csv", csv, "-quarantine-report", quar, "-status-file", status,
		"-chaos", "panic:policy=pots seed=2"})
	if err != nil {
		t.Fatalf("campaign with a quarantined cell must exit cleanly: %v", err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "quarantined:panic") {
		t.Fatalf("frontier CSV lacks the gap row:\n%s", blob)
	}
	qblob, err := os.ReadFile(quar)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(qblob), `"class": "panic"`) {
		t.Fatalf("quarantine report lacks the panic entry:\n%s", qblob)
	}
	if _, err := os.Stat(status); err != nil {
		t.Fatalf("status file missing: %v", err)
	}

	// Resume against the same dir (chaos disarmed): byte-identical CSV
	// served from the journal.
	csv2 := filepath.Join(dir, "frontier2.csv")
	if err := run([]string{"-campaign", spec, "-dir", state, "-resume",
		"-workers", "1", "-csv", csv2}); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(csv2)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("resumed CSV differs:\nfirst:\n%s\nsecond:\n%s", blob, blob2)
	}

	// A campaign may not resume into a directory whose journal belongs
	// to a different spec.
	if err := os.WriteFile(spec, []byte(`{
  "name": "cli",
  "meshes": ["4x4"],
  "nodes": ["16nm"],
  "tdpFractions": [0.4],
  "baseIntervalsMS": [20],
  "policies": ["pots", "notest"],
  "seeds": 1,
  "horizonMS": 30
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-campaign", spec, "-dir", state, "-resume"}); err == nil {
		t.Fatal("resume against a different spec's journal accepted")
	}
}

// TestSweepCSVWriteIsAtomic pins the atomicwrite fix: the sweep CSV
// must land via checkpoint.WriteFileAtomic (write-to-temp, fsync,
// rename), so a pre-existing file is replaced wholesale and no *.tmp*
// droppings survive a successful run.
func TestSweepCSVWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "sweep.csv")
	if err := os.WriteFile(csv, []byte("stale partial content"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-tdp", "0.3", "-interval", "50ms",
		"-horizon", "40ms", "-seeds", "1", "-csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "stale partial") {
		t.Fatal("sweep CSV was not replaced")
	}
	if !strings.HasPrefix(string(blob), "tdp-frac") {
		t.Fatalf("sweep CSV lost its header: %q", string(blob)[:40])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind by the atomic write", e.Name())
		}
	}
}
