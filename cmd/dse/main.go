// Command dse explores the design space a deployer of power-aware online
// testing actually faces.
//
// Campaign mode (-campaign) is the flagship workload: a JSON campaign
// spec enumerates a (mesh x tech node x TDP fraction x interval x
// policy x seed) space, internal/dse runs it on a worker pool with an
// optional short-horizon screening rung, and the result is the Pareto
// frontier over {throughput penalty, test coverage, peak temperature,
// power headroom}. The campaign journals every verdict, so it can be
// SIGKILLed at any instant and resumed with -resume to a byte-identical
// frontier; poisoned cells (panic, timeout, guard violation) are
// quarantined and reported instead of aborting the run.
//
// Without -campaign the classic inline sweep runs: (TDP fraction x base
// test interval) with throughput penalty, test energy and fault
// detection latency as the objectives.
//
// Usage:
//
//	dse -campaign configs/campaign-default.json -dir state -workers 8
//	dse -campaign spec.json -dir state -resume -csv frontier.csv
//	dse -campaign spec.json -dir state -store stores/   # per-stage columnar outcome stores
//	dse -tdp 0.25,0.35,0.5 -interval 20ms,50ms,100ms -horizon 300ms -seeds 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"potsim/internal/checkpoint"
	"potsim/internal/core"
	"potsim/internal/dse"
	"potsim/internal/expt"
	"potsim/internal/metrics"
	"potsim/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dse: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	// Campaign mode.
	campaign := fs.String("campaign", "", "campaign spec JSON; switches to the crash-proof campaign engine")
	dir := fs.String("dir", "", "campaign state directory (journals live here; required with -campaign)")
	resume := fs.Bool("resume", false, "resume the campaign from the journals in -dir")
	workers := fs.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS); never affects results")
	quarantineReport := fs.String("quarantine-report", "", "write the quarantine record as JSON")
	statusFile := fs.String("status-file", "", "atomically rewrite campaign progress JSON here")
	cellTimeout := fs.Duration("cell-timeout", 2*time.Minute, "watchdog deadline per campaign cell (0 = none)")
	retries := fs.Int("retries", 1, "retry budget per campaign cell")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff (doubles per retry, capped at 10x)")
	chaosFlag := fs.String("chaos", "", "inject failures into matching cells: mode[:labelsubstring] (testing only)")
	// Shared / classic sweep mode.
	tdpList := fs.String("tdp", "0.25,0.35,0.50", "comma-separated TDP fractions (sweep mode)")
	ivList := fs.String("interval", "20ms,50ms,100ms", "comma-separated criticality base intervals (sweep mode)")
	horizon := fs.Duration("horizon", 300*time.Millisecond, "simulated horizon per point (sweep mode)")
	seeds := fs.Int("seeds", 2, "replications per point (sweep mode)")
	csvPath := fs.String("csv", "", "write the frontier (or sweep) as CSV")
	storeDir := fs.String("store", "", "campaign mode: write per-stage columnar result stores under this root (query with cmd/results)")
	shards := fs.Int("shards", 0, "epoch-integrator shards per simulation (0 = serial; results are identical at any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0")
	}
	if *campaign != "" {
		return runCampaign(campaignOptions{
			specPath:         *campaign,
			dir:              *dir,
			resume:           *resume,
			workers:          *workers,
			shards:           *shards,
			csvPath:          *csvPath,
			storeDir:         *storeDir,
			quarantineReport: *quarantineReport,
			statusFile:       *statusFile,
			cellTimeout:      *cellTimeout,
			retries:          *retries,
			retryBackoff:     *retryBackoff,
			chaos:            *chaosFlag,
		})
	}
	if *resume {
		return fmt.Errorf("-resume needs -campaign (the classic sweep has no journal)")
	}
	return runSweep(*tdpList, *ivList, *horizon, *seeds, *csvPath, *shards)
}

// campaignOptions carries the campaign-mode flag values.
type campaignOptions struct {
	specPath         string
	dir              string
	resume           bool
	workers          int
	shards           int
	csvPath          string
	storeDir         string
	quarantineReport string
	statusFile       string
	cellTimeout      time.Duration
	retries          int
	retryBackoff     time.Duration
	chaos            string
}

// runCampaign drives the crash-proof campaign engine. Quarantined cells
// are not an error — the campaign completes with a partial frontier and
// exit code 0; only infrastructure failures (unusable journal, spec
// mismatch, interruption) are.
func runCampaign(o campaignOptions) error {
	if o.dir == "" {
		return fmt.Errorf("campaign mode needs -dir (the journals are the resume state)")
	}
	spec, err := dse.LoadSpec(o.specPath)
	if err != nil {
		return err
	}
	chaos, err := expt.ParseChaos(o.chaos)
	if err != nil {
		return err
	}
	eng := &dse.Engine{
		Spec:         spec,
		Dir:          o.dir,
		Resume:       o.resume,
		Workers:      o.workers,
		Shards:       o.shards,
		CellTimeout:  o.cellTimeout,
		Retries:      o.retries,
		RetryBackoff: o.retryBackoff,
		Chaos:        chaos,
		Stderr:       os.Stderr,
		StatusPath:   o.statusFile,
		StoreDir:     o.storeDir,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := eng.Run(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return context.Canceled
		}
		return err
	}
	fmt.Print(res.Table().Render())
	fmt.Printf("\n%s: %d-cell Pareto frontier over %d cells (%d survivors), %s\n",
		spec.Name, len(res.Frontier), res.Total, res.Survivors, res.Quarantine.Summary())
	if o.csvPath != "" {
		if err := checkpoint.WriteFileAtomic(o.csvPath, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
	}
	if o.quarantineReport != "" {
		blob, err := res.Quarantine.JSON()
		if err != nil {
			return err
		}
		if err := checkpoint.WriteFileAtomic(o.quarantineReport, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseFloatList parses a comma-separated float list strictly: every
// token must be a whole, finite number — "0.5x", "1e" and empty tokens
// are errors, not silent truncations.
func parseFloatList(flagName, list string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("bad %s entry %q: empty token", flagName, tok)
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, tok, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bad %s entry %q: not a finite number", flagName, tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// runSweep is the classic inline (TDP x interval) sweep.
func runSweep(tdpList, ivList string, horizon time.Duration, seeds int, csvPath string, shards int) error {
	tdps, err := parseFloatList("-tdp", tdpList)
	if err != nil {
		return err
	}
	for _, v := range tdps {
		if v <= 0 || v > 1 {
			return fmt.Errorf("bad -tdp entry %v: outside (0, 1]", v)
		}
	}
	var ivs []time.Duration
	for _, tok := range strings.Split(ivList, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(tok))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad -interval entry %q", tok)
		}
		ivs = append(ivs, d)
	}
	if seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1")
	}

	type point struct {
		tdp      float64
		interval time.Duration
		penalty  float64 // %
		energy   float64 // % of consumed energy
		latency  float64 // ms mean detection latency
	}
	var points []point
	for _, tdp := range tdps {
		for _, iv := range ivs {
			var pen, en, lat float64
			for s := 1; s <= seeds; s++ {
				cfg := core.DefaultConfig()
				cfg.Horizon = sim.FromDuration(horizon)
				cfg.TDPFraction = tdp
				cfg.Criticality.BaseInterval = sim.FromDuration(iv)
				cfg.MapperName = "NN" // identical mapping across policies
				cfg.EnableFaults = true
				cfg.Faults.BaseRatePerSec = 0.1
				cfg.Seed = uint64(s)
				cfg.Shards = shards
				rep, err := runOne(cfg)
				if err != nil {
					return err
				}
				cfg.TestPolicy = core.PolicyNoTest
				ref, err := runOne(cfg)
				if err != nil {
					return err
				}
				pen += 100 * rep.ThroughputPenalty(ref)
				en += 100 * rep.TestEnergyShare
				lat += rep.FaultStats.MeanLatency.Millis()
			}
			n := float64(seeds)
			points = append(points, point{
				tdp: tdp, interval: iv,
				penalty: pen / n, energy: en / n, latency: lat / n,
			})
		}
	}

	objectives := make([][]float64, len(points))
	for i, p := range points {
		pen := p.penalty
		if pen < 0 {
			pen = 0 // faster-than-baseline is as good as free
		}
		objectives[i] = []float64{pen, p.energy, p.latency}
	}
	front, err := metrics.ParetoMin(objectives)
	if err != nil {
		return err
	}

	t := metrics.NewTable(
		"design-space sweep: budget x test-interval (objectives minimised)",
		"tdp-frac", "base-interval", "penalty(%)", "test-energy(%)",
		"detect-latency(ms)", "pareto")
	for i, p := range points {
		mark := ""
		if front[i] {
			mark = "*"
		}
		t.AddRow(p.tdp, p.interval.String(), p.penalty, p.energy, p.latency, mark)
	}
	fmt.Print(t.Render())
	fmt.Println("\n'*' marks Pareto-optimal configurations.")
	if csvPath != "" {
		if err := checkpoint.WriteFileAtomic(csvPath, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runOne(cfg core.Config) (*core.Report, error) {
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}
