// Command dse explores the design space a deployer of power-aware online
// testing actually faces: how tight to set the power budget and how eager
// to make the test-criticality target. It sweeps (TDP fraction x base
// test interval), measures throughput penalty, test energy and fault
// detection latency for every point, and marks the Pareto-optimal
// configurations (all three objectives minimised).
//
// Usage:
//
//	dse
//	dse -tdp 0.25,0.35,0.5 -interval 20ms,50ms,100ms -horizon 300ms -seeds 2
//	dse -csv sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"potsim/internal/core"
	"potsim/internal/metrics"
	"potsim/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	tdpList := fs.String("tdp", "0.25,0.35,0.50", "comma-separated TDP fractions")
	ivList := fs.String("interval", "20ms,50ms,100ms", "comma-separated criticality base intervals")
	horizon := fs.Duration("horizon", 300*time.Millisecond, "simulated horizon per point")
	seeds := fs.Int("seeds", 2, "replications per point")
	csvPath := fs.String("csv", "", "write the sweep as CSV")
	shards := fs.Int("shards", 0, "epoch-integrator shards per simulation (0 = serial; results are identical at any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0")
	}

	var tdps []float64
	for _, tok := range strings.Split(*tdpList, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &v); err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad -tdp entry %q", tok)
		}
		tdps = append(tdps, v)
	}
	var ivs []time.Duration
	for _, tok := range strings.Split(*ivList, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(tok))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad -interval entry %q", tok)
		}
		ivs = append(ivs, d)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1")
	}

	type point struct {
		tdp      float64
		interval time.Duration
		penalty  float64 // %
		energy   float64 // % of consumed energy
		latency  float64 // ms mean detection latency
	}
	var points []point
	for _, tdp := range tdps {
		for _, iv := range ivs {
			var pen, en, lat float64
			for s := 1; s <= *seeds; s++ {
				cfg := core.DefaultConfig()
				cfg.Horizon = sim.FromDuration(*horizon)
				cfg.TDPFraction = tdp
				cfg.Criticality.BaseInterval = sim.FromDuration(iv)
				cfg.MapperName = "NN" // identical mapping across policies
				cfg.EnableFaults = true
				cfg.Faults.BaseRatePerSec = 0.1
				cfg.Seed = uint64(s)
				cfg.Shards = *shards
				rep, err := runOne(cfg)
				if err != nil {
					return err
				}
				cfg.TestPolicy = core.PolicyNoTest
				ref, err := runOne(cfg)
				if err != nil {
					return err
				}
				pen += 100 * rep.ThroughputPenalty(ref)
				en += 100 * rep.TestEnergyShare
				lat += rep.FaultStats.MeanLatency.Millis()
			}
			n := float64(*seeds)
			points = append(points, point{
				tdp: tdp, interval: iv,
				penalty: pen / n, energy: en / n, latency: lat / n,
			})
		}
	}

	objectives := make([][]float64, len(points))
	for i, p := range points {
		pen := p.penalty
		if pen < 0 {
			pen = 0 // faster-than-baseline is as good as free
		}
		objectives[i] = []float64{pen, p.energy, p.latency}
	}
	front, err := metrics.ParetoMin(objectives)
	if err != nil {
		return err
	}

	t := metrics.NewTable(
		"design-space sweep: budget x test-interval (objectives minimised)",
		"tdp-frac", "base-interval", "penalty(%)", "test-energy(%)",
		"detect-latency(ms)", "pareto")
	for i, p := range points {
		mark := ""
		if front[i] {
			mark = "*"
		}
		t.AddRow(p.tdp, p.interval.String(), p.penalty, p.energy, p.latency, mark)
	}
	fmt.Print(t.Render())
	fmt.Println("\n'*' marks Pareto-optimal configurations.")
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runOne(cfg core.Config) (*core.Report, error) {
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}
