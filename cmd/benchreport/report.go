package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Benchmark is one named benchmark with its metrics averaged over every
// parsed result line (repeated -count invocations collapse into one
// entry). Metrics maps a unit ("ns/op", "B/op", "allocs/op", custom
// ReportMetric units) to its mean value across runs.
type Benchmark struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the parsed form of one or more `go test -bench` outputs.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`

	index map[string]int
	sums  []map[string]float64 // parallel to Benchmarks; per-unit sums
}

// Parse extracts benchmark results from go-test output. Lines that are
// not benchmark results (test logs, PASS/ok trailers) are ignored.
func Parse(text string) *Report {
	r := &Report{index: map[string]int{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: Name N value unit [value unit]...
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			metrics[fields[i+1]] = v
		}
		if !ok || len(metrics) == 0 {
			continue
		}
		r.add(normalizeName(fields[0]), 1, iters, metrics)
	}
	r.refold()
	return r
}

// normalizeName strips the trailing -GOMAXPROCS suffix so runs captured
// on machines with different core counts stay comparable.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if !unicode.IsDigit(c) {
			return name
		}
	}
	return name[:i]
}

// add folds `runs` result lines whose per-unit SUMS are given.
func (r *Report) add(name string, runs int, iters int64, sums map[string]float64) {
	if r.index == nil {
		r.index = map[string]int{}
	}
	idx, seen := r.index[name]
	if !seen {
		idx = len(r.Benchmarks)
		r.index[name] = idx
		r.Benchmarks = append(r.Benchmarks, Benchmark{Name: name})
		r.sums = append(r.sums, map[string]float64{})
	}
	b := &r.Benchmarks[idx]
	b.Runs += runs
	b.Iterations += iters
	for unit, v := range sums {
		r.sums[idx][unit] += v
	}
}

// refold recomputes every benchmark's means from the running sums.
func (r *Report) refold() {
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		b.Metrics = map[string]float64{}
		for unit, sum := range r.sums[i] {
			b.Metrics[unit] = sum / float64(b.Runs)
		}
	}
}

// merge folds another parsed report into this one.
func (r *Report) merge(other *Report) {
	if r.Goos == "" {
		r.Goos, r.Goarch, r.CPU = other.Goos, other.Goarch, other.CPU
	}
	for i, b := range other.Benchmarks {
		r.add(b.Name, b.Runs, b.Iterations, other.sums[i])
	}
	r.refold()
}

// Mean returns the benchmark's mean for a unit; ok reports presence.
func (r *Report) Mean(name, unit string) (float64, bool) {
	idx, seen := r.index[name]
	if !seen {
		return 0, false
	}
	v, seen := r.Benchmarks[idx].Metrics[unit]
	return v, seen
}

// JSON renders the report with stable benchmark ordering.
func (r *Report) JSON() ([]byte, error) {
	sorted := make([]Benchmark, len(r.Benchmarks))
	copy(sorted, r.Benchmarks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	out := *r
	out.Benchmarks = sorted
	blob, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Gate compares the gated benchmarks' mean ns/op between baseline and
// current, returning one message per violation. A gated benchmark
// missing from either side is a violation: a silently vanished
// benchmark must not green the gate.
func Gate(base, cur *Report, gated []string, threshold float64) []string {
	var failures []string
	for _, name := range gated {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, okB := base.Mean(name, "ns/op")
		c, okC := cur.Mean(name, "ns/op")
		switch {
		case !okB:
			failures = append(failures,
				fmt.Sprintf("%s: missing from baseline (refresh bench/baseline.txt)", name))
		case !okC:
			failures = append(failures,
				fmt.Sprintf("%s: missing from current run", name))
		case c > b*(1+threshold):
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit +%.0f%%)",
					name, c, b, (c/b-1)*100, threshold*100))
		}
	}
	return failures
}

// GateCeilings enforces absolute per-benchmark ceilings on one metric
// of the current capture: each spec is "Name=limit" (comma-separated in
// the flag). Unlike the relative ns/op gate, ceilings need no baseline,
// so they suit contracts that are absolute by nature — an alloc count
// that must stay zero, a query that must stay under a wall-clock bound.
func GateCeilings(cur *Report, unit string, specs []string) []string {
	var failures []string
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, limitStr, ok := strings.Cut(spec, "=")
		if !ok {
			failures = append(failures, fmt.Sprintf("bad ceiling spec %q (want Name=limit)", spec))
			continue
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			failures = append(failures, fmt.Sprintf("bad ceiling limit in %q: %v", spec, err))
			continue
		}
		v, found := cur.Mean(name, unit)
		switch {
		case !found:
			failures = append(failures,
				fmt.Sprintf("%s: missing from current run (ceiling %g %s)", name, limit, unit))
		case v > limit:
			failures = append(failures,
				fmt.Sprintf("%s: %g %s exceeds ceiling %g %s", name, v, unit, limit, unit))
		}
	}
	return failures
}

// GateSpeedups enforces minimum mean-ns/op ratios between two
// benchmarks of the SAME capture: each spec is "Slow Fast min"
// (space-separated triple; specs comma-separated in the flag). Because
// both sides run in one capture on one machine, the ratio cancels the
// machine-level noise that makes absolute I/O-bound ns/op ungateable.
func GateSpeedups(cur *Report, specs []string) []string {
	var failures []string
	for _, spec := range specs {
		fields := strings.Fields(spec)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			failures = append(failures, fmt.Sprintf("bad speedup spec %q (want \"Slow Fast min\")", spec))
			continue
		}
		slow, fast := fields[0], fields[1]
		min, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			failures = append(failures, fmt.Sprintf("bad speedup minimum in %q: %v", spec, err))
			continue
		}
		s, okS := cur.Mean(slow, "ns/op")
		f, okF := cur.Mean(fast, "ns/op")
		switch {
		case !okS:
			failures = append(failures, fmt.Sprintf("%s: missing from current run (speedup check)", slow))
		case !okF:
			failures = append(failures, fmt.Sprintf("%s: missing from current run (speedup check)", fast))
		case f <= 0:
			failures = append(failures, fmt.Sprintf("%s: non-positive ns/op %g", fast, f))
		case s/f < min:
			failures = append(failures,
				fmt.Sprintf("%s vs %s: %.1fx speedup, want >= %.0fx", fast, slow, s/f, min))
		}
	}
	return failures
}
