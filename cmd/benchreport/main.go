// Command benchreport turns `go test -bench` text output into a JSON
// report and gates benchmark regressions against a committed baseline.
//
// Parse mode (default) reads one or more benchmark output files (or
// stdin) and writes a JSON summary, averaging repeated -count runs:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchreport -out BENCH_20250101.json
//
// Check mode compares the current output against a baseline capture and
// exits non-zero when a gated benchmark's mean ns/op regresses past the
// threshold, when an absolute ceiling (-max-allocs, -max-ns) is
// exceeded, or when a same-capture speedup ratio (-min-speedup) falls
// below its minimum:
//
//	benchreport -check -baseline bench/baseline.txt current.txt
//
// The tool intentionally has no dependencies beyond the standard
// library so the regression gate runs anywhere the toolchain does;
// benchstat remains the human-facing comparison view.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	var (
		out      = flag.String("out", "", "write the JSON report to this file (default stdout)")
		check    = flag.Bool("check", false, "compare against -baseline instead of emitting JSON")
		baseline = flag.String("baseline", "bench/baseline.txt", "baseline benchmark capture for -check")
		gate     = flag.String("gate",
			// BenchmarkResultsAppend/store is deliberately absent: its
			// ns/op is fsync-latency-dominated and swings far past the
			// noise threshold on shared runners. Its contracts are gated
			// absolutely instead: allocs/op via -max-allocs and ingest
			// speedup over the CSV path via -min-speedup (a same-capture
			// ratio, which cancels machine-level noise).
			"BenchmarkSystemEpoch/serial,BenchmarkSystemEpoch/shards=1,BenchmarkSystemEpoch/shards=4,"+
				"BenchmarkNoCStep,BenchmarkThermalStep/cores=1024,BenchmarkSystemRun32,"+
				"BenchmarkResultsQuery",
			"comma-separated benchmarks gated by -check")
		threshold = flag.Float64("threshold", 0.10, "fractional ns/op regression allowed by -check")
		maxAllocs = flag.String("max-allocs",
			"BenchmarkResultsAppend/store=0,BenchmarkNoCStep=0",
			"comma-separated Name=limit ceilings on mean allocs/op, checked by -check")
		maxNs = flag.String("max-ns",
			"BenchmarkResultsQuery=1e9",
			"comma-separated Name=limit ceilings on mean ns/op, checked by -check")
		minSpeedup = flag.String("min-speedup",
			"BenchmarkResultsAppend/csv-baseline BenchmarkResultsAppend/store 10",
			"comma-separated \"Slow Fast min\" same-capture ns/op ratios, checked by -check")
	)
	flag.Parse()

	cur, err := readBenchmarks(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *check {
		base, err := readFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %w", err))
		}
		failures := Gate(base, cur, strings.Split(*gate, ","), *threshold)
		failures = append(failures, GateCeilings(cur, "allocs/op", strings.Split(*maxAllocs, ","))...)
		failures = append(failures, GateCeilings(cur, "ns/op", strings.Split(*maxNs, ","))...)
		failures = append(failures, GateSpeedups(cur, strings.Split(*minSpeedup, ","))...)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchreport: %d gated benchmarks within %.0f%% of baseline; ceilings and speedups hold\n",
			len(strings.Split(*gate, ",")), *threshold*100)
		return
	}

	blob, err := cur.JSON()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchreport: wrote %d benchmarks to %s\n", len(cur.Benchmarks), *out)
}

func readBenchmarks(paths []string) (*Report, error) {
	if len(paths) == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return Parse(string(text)), nil
	}
	merged := &Report{}
	for _, p := range paths {
		r, err := readFile(p)
		if err != nil {
			return nil, err
		}
		merged.merge(r)
	}
	return merged, nil
}

func readFile(path string) (*Report, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(text)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(2)
}
