package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: potsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSystemEpoch-8 	  141760	      8000 ns/op	     11657 sim-ms/s	       0 B/op	       0 allocs/op
BenchmarkSystemEpoch-8 	  135602	      9000 ns/op	     11633 sim-ms/s	       0 B/op	       0 allocs/op
BenchmarkNoCStep-8     	   39530	     32785 ns/op	    1917 B/op	       4 allocs/op
BenchmarkThermalStep/cores=64-8 	  500000	      2500 ns/op	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkE1ThroughputPenalty
    bench_test.go:31: some table output
PASS
ok  	potsim	3.809s
`

func TestParse(t *testing.T) {
	r := Parse(sample)
	if r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Fatalf("environment header not parsed: %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	// Repeated -count lines fold into a mean; the -8 suffix is stripped.
	ns, ok := r.Mean("BenchmarkSystemEpoch", "ns/op")
	if !ok || math.Abs(ns-8500) > 1e-9 {
		t.Fatalf("SystemEpoch mean ns/op = %v (ok=%v), want 8500", ns, ok)
	}
	if v, ok := r.Mean("BenchmarkSystemEpoch", "sim-ms/s"); !ok || math.Abs(v-11645) > 1e-9 {
		t.Fatalf("custom metric mean = %v (ok=%v), want 11645", v, ok)
	}
	// Sub-benchmark names keep their /part but lose the cpu suffix.
	if _, ok := r.Mean("BenchmarkThermalStep/cores=64", "ns/op"); !ok {
		t.Fatal("sub-benchmark not parsed")
	}
	if v, ok := r.Mean("BenchmarkNoCStep", "allocs/op"); !ok || v != 4 {
		t.Fatalf("allocs/op = %v (ok=%v), want 4", v, ok)
	}
}

func TestJSONStableAndValid(t *testing.T) {
	blob, err := Parse(sample).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(decoded.Benchmarks) != 3 {
		t.Fatalf("round-trip lost benchmarks: %d", len(decoded.Benchmarks))
	}
	for i := 1; i < len(decoded.Benchmarks); i++ {
		if decoded.Benchmarks[i-1].Name > decoded.Benchmarks[i].Name {
			t.Fatal("benchmarks not sorted by name")
		}
	}
}

func TestGate(t *testing.T) {
	base := Parse("BenchmarkSystemEpoch 100 1000 ns/op\nBenchmarkNoCStep 100 500 ns/op\n")
	gated := []string{"BenchmarkSystemEpoch", "BenchmarkNoCStep"}

	// Within threshold: +9% passes.
	cur := Parse("BenchmarkSystemEpoch 100 1090 ns/op\nBenchmarkNoCStep 100 500 ns/op\n")
	if f := Gate(base, cur, gated, 0.10); len(f) != 0 {
		t.Fatalf("+9%% flagged as regression: %v", f)
	}
	// Past threshold: +20% fails.
	cur = Parse("BenchmarkSystemEpoch 100 1200 ns/op\nBenchmarkNoCStep 100 500 ns/op\n")
	f := Gate(base, cur, gated, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkSystemEpoch") {
		t.Fatalf("+20%% not flagged: %v", f)
	}
	// A gated benchmark missing from the current run fails.
	cur = Parse("BenchmarkSystemEpoch 100 1000 ns/op\n")
	f = Gate(base, cur, gated, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkNoCStep") {
		t.Fatalf("missing benchmark not flagged: %v", f)
	}
	// Missing from the baseline also fails (stale baseline).
	f = Gate(Parse("BenchmarkNoCStep 100 500 ns/op\n"),
		Parse("BenchmarkSystemEpoch 100 1000 ns/op\nBenchmarkNoCStep 100 500 ns/op\n"),
		gated, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "baseline") {
		t.Fatalf("stale baseline not flagged: %v", f)
	}
	// Improvements never fail.
	cur = Parse("BenchmarkSystemEpoch 100 100 ns/op\nBenchmarkNoCStep 100 50 ns/op\n")
	if f := Gate(base, cur, gated, 0.10); len(f) != 0 {
		t.Fatalf("improvement flagged: %v", f)
	}
}

func TestGateCeilings(t *testing.T) {
	cur := Parse("BenchmarkResultsAppend/store 100 250 ns/op 0 allocs/op\n" +
		"BenchmarkResultsQuery 10 180000000 ns/op 955 allocs/op\n")

	// All ceilings hold.
	f := GateCeilings(cur, "allocs/op", []string{"BenchmarkResultsAppend/store=0"})
	f = append(f, GateCeilings(cur, "ns/op", []string{"BenchmarkResultsQuery=1e9"})...)
	if len(f) != 0 {
		t.Fatalf("ceilings within limits flagged: %v", f)
	}
	// An exceeded ceiling fails.
	f = GateCeilings(cur, "allocs/op", []string{"BenchmarkResultsQuery=0"})
	if len(f) != 1 || !strings.Contains(f[0], "exceeds ceiling") {
		t.Fatalf("exceeded ceiling not flagged: %v", f)
	}
	// A benchmark missing from the capture fails: the ceiling cannot
	// green itself by vanishing.
	f = GateCeilings(cur, "ns/op", []string{"BenchmarkGone=1"})
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", f)
	}
	// Malformed specs fail loudly rather than being skipped.
	f = GateCeilings(cur, "ns/op", []string{"no-equals-sign"})
	if len(f) != 1 || !strings.Contains(f[0], "bad ceiling spec") {
		t.Fatalf("malformed spec not flagged: %v", f)
	}
}

func TestGateSpeedups(t *testing.T) {
	cur := Parse("BenchmarkResultsAppend/store 100 250 ns/op\n" +
		"BenchmarkResultsAppend/csv-baseline 100 3500 ns/op\n")

	// 14x measured vs 10x floor: passes.
	spec := []string{"BenchmarkResultsAppend/csv-baseline BenchmarkResultsAppend/store 10"}
	if f := GateSpeedups(cur, spec); len(f) != 0 {
		t.Fatalf("satisfied speedup flagged: %v", f)
	}
	// 14x vs a 20x floor: fails.
	f := GateSpeedups(cur, []string{"BenchmarkResultsAppend/csv-baseline BenchmarkResultsAppend/store 20"})
	if len(f) != 1 || !strings.Contains(f[0], "14.0x speedup") {
		t.Fatalf("insufficient speedup not flagged: %v", f)
	}
	// Either side missing fails.
	f = GateSpeedups(cur, []string{"BenchmarkGone BenchmarkResultsAppend/store 10"})
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("missing slow side not flagged: %v", f)
	}
	// Malformed specs fail loudly.
	f = GateSpeedups(cur, []string{"only two-fields"})
	if len(f) != 1 || !strings.Contains(f[0], "bad speedup spec") {
		t.Fatalf("malformed spec not flagged: %v", f)
	}
}

func TestMergeAveragesAcrossFiles(t *testing.T) {
	a := Parse("BenchmarkX 10 100 ns/op\nBenchmarkX 10 200 ns/op\n")
	b := Parse("BenchmarkX 10 600 ns/op\n")
	merged := &Report{index: map[string]int{}}
	merged.merge(a)
	merged.merge(b)
	v, ok := merged.Mean("BenchmarkX", "ns/op")
	if !ok || math.Abs(v-300) > 1e-9 {
		t.Fatalf("merged mean = %v (ok=%v), want 300 over 3 runs", v, ok)
	}
	if merged.Benchmarks[0].Runs != 3 {
		t.Fatalf("merged runs = %d, want 3", merged.Benchmarks[0].Runs)
	}
}
