// Command nocviz runs the standalone flit-level NoC study: latency and
// throughput versus offered load for the classic synthetic traffic
// patterns, on the same wormhole mesh the manycore simulation abstracts.
//
// Usage:
//
//	nocviz -mesh 8x8 -pattern uniform
//	nocviz -pattern hotspot -size 4 -points 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"potsim/internal/metrics"
	"potsim/internal/noc"
	"potsim/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nocviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nocviz", flag.ContinueOnError)
	mesh := fs.String("mesh", "8x8", "mesh geometry WxH")
	pattern := fs.String("pattern", "uniform", "traffic: uniform|transpose|bitcomp|hotspot")
	size := fs.Int("size", 4, "packet size in flits")
	vcs := fs.Int("vcs", 1, "virtual channels per input port")
	routing := fs.String("routing", "xy", "routing algorithm: xy or westfirst")
	topology := fs.String("topology", "mesh", "topology: mesh or torus (torus needs -vcs >= 2)")
	points := fs.Int("points", 10, "number of load points")
	maxLoad := fs.Float64("max-load", 0.5, "highest offered load (flits/node/cycle)")
	warmup := fs.Int64("warmup", 2000, "warmup cycles")
	measure := fs.Int64("measure", 8000, "measurement cycles")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %v", *mesh, err)
	}
	cfg := noc.DefaultConfig(w, h)
	cfg.VirtualChannels = *vcs
	switch *topology {
	case "mesh":
		cfg.Topology = noc.TopologyMesh
	case "torus":
		cfg.Topology = noc.TopologyTorus
	default:
		return fmt.Errorf("unknown -topology %q", *topology)
	}
	switch *routing {
	case "xy":
		cfg.Routing = noc.RoutingXY
	case "westfirst", "west-first":
		cfg.Routing = noc.RoutingWestFirst
	default:
		return fmt.Errorf("unknown -routing %q", *routing)
	}
	pat, err := noc.PatternByName(*pattern, cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("flit-level %s %v, %s traffic, %d-flit packets, %d VC(s), %v routing",
			*mesh, cfg.Topology, *pattern, *size, *vcs, cfg.Routing),
		"offered(f/n/c)", "accepted(f/n/c)", "mean-lat(cyc)", "p95-lat(cyc)", "delivered")
	for i := 1; i <= *points; i++ {
		load := *maxLoad * float64(i) / float64(*points)
		st, err := noc.RunLoadPoint(cfg, pat, *seed, load, *size, *warmup, *measure)
		if err != nil {
			return err
		}
		t.AddRow(load, st.ThroughputFPC, st.MeanLatency, float64(st.P95Latency), st.Delivered)
	}
	fmt.Print(t.Render())

	// Link-load detail at the highest load point.
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		return err
	}
	gen, err := noc.NewGenerator(net, pat,
		simStream(*seed), *maxLoad, *size)
	if err != nil {
		return err
	}
	for i := int64(0); i < *warmup+*measure; i++ {
		if err := gen.Tick(); err != nil {
			return err
		}
		net.Step()
	}
	if hot, ok := net.HottestLink(); ok {
		fmt.Printf("\nat load %.3f: mean link utilization %.3f, hottest link %v->%v at %.3f flits/cycle\n",
			*maxLoad, net.MeanLinkUtilization(), hot.From, hot.Dir, hot.Utilization)
	}
	return nil
}

func simStream(seed uint64) *sim.Stream {
	return sim.NewRNG(seed).Stream("noc-traffic")
}
