package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	err := run([]string{"-mesh", "3x3", "-points", "2", "-warmup", "200",
		"-measure", "500", "-max-load", "0.2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPatterns(t *testing.T) {
	for _, p := range []string{"uniform", "transpose", "bitcomp", "hotspot"} {
		err := run([]string{"-mesh", "3x3", "-pattern", p, "-points", "1",
			"-warmup", "100", "-measure", "300"})
		if err != nil {
			t.Fatalf("pattern %s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-mesh", "x"}); err == nil {
		t.Error("bad mesh accepted")
	}
	if err := run([]string{"-pattern", "nope"}); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestRunTorus(t *testing.T) {
	err := run([]string{"-mesh", "4x4", "-topology", "torus", "-vcs", "2",
		"-points", "1", "-warmup", "100", "-measure", "400"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", "klein-bottle"}); err == nil {
		t.Error("bogus topology accepted")
	}
	if err := run([]string{"-topology", "torus", "-vcs", "1", "-points", "1"}); err == nil {
		t.Error("torus with one VC accepted")
	}
}
