// Command results inspects, exports, imports and queries columnar
// result stores (see internal/results and the "Columnar result store"
// section of DESIGN.md).
//
// Usage:
//
//	results stat   -store dir                # segments, rows, schema, meta
//	results export -store dir [-o out.csv]   # store -> CSV (byte-identical to the stored table)
//	results import -csv e1.csv -store dir    # legacy CSV -> store (round-trips exactly)
//	results query  -store dir -group-by policy -agg count,mean:penalty,p95:penalty \
//	               [-where 'cell<100'] [-csv]
//
// Queries stream over the segments in constant memory: filters and
// group-by run in one ordered pass, percentiles use P-squared
// estimators. Every segment is checksum-verified as it is read; a
// corrupt store fails the command rather than aggregating bad rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"potsim/internal/checkpoint"
	"potsim/internal/metrics"
	"potsim/internal/results"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "results:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: results <stat|export|import|query> [flags]")
	}
	switch args[0] {
	case "stat":
		return runStat(args[1:])
	case "export":
		return runExport(args[1:])
	case "import":
		return runImport(args[1:])
	case "query":
		return runQuery(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (have stat, export, import, query)", args[0])
	}
}

func runStat(args []string) error {
	fs := flag.NewFlagSet("results stat", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("stat: -store is required")
	}
	st, err := results.Open(*dir, nil)
	if err != nil {
		return err
	}
	fmt.Printf("store:    %s\n", st.Dir())
	fmt.Printf("segments: %d\n", st.Segments())
	fmt.Printf("rows:     %d\n", st.Rows())
	if sch := st.Schema(); sch != nil {
		parts := make([]string, len(sch))
		for i, c := range sch {
			parts[i] = fmt.Sprintf("%s:%s", c.Name, c.Kind)
		}
		fmt.Printf("schema:   %s\n", strings.Join(parts, " "))
	}
	if st.Segments() > 0 {
		for k, v := range st.SegmentMeta(0) {
			fmt.Printf("meta:     %s=%s\n", k, v)
		}
	}
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("results export", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	out := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("export: -store is required")
	}
	csv, err := results.ExportCSV(*dir)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(csv)
		return err
	}
	return checkpoint.WriteFileAtomic(*out, csv, 0o644)
}

func runImport(args []string) error {
	fs := flag.NewFlagSet("results import", flag.ContinueOnError)
	csvPath := fs.String("csv", "", "CSV file to convert")
	dir := fs.String("store", "", "store directory to (re)create")
	id := fs.String("id", "", "optional id recorded in segment meta")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" || *dir == "" {
		return fmt.Errorf("import: -csv and -store are required")
	}
	blob, err := os.ReadFile(*csvPath)
	if err != nil {
		return err
	}
	meta := map[string]string{"imported-from": *csvPath}
	if *id != "" {
		meta[results.MetaID] = *id
	}
	if err := results.ImportCSV(blob, *dir, meta); err != nil {
		return err
	}
	// The converter's contract is exact round-trip; verify it here so
	// a conversion that would not re-export identically fails loudly
	// instead of quietly shipping a near-copy.
	back, err := results.ExportCSV(*dir)
	if err != nil {
		return err
	}
	if string(back) != string(blob) {
		return fmt.Errorf("import: %s does not round-trip byte-identically", *csvPath)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("results query", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	groupBy := fs.String("group-by", "", "comma-separated group-by columns")
	aggSpec := fs.String("agg", "count", "comma-separated aggregates: count, sum:col, mean:col, min:col, max:col, p95:col, ...")
	var wheres stringList
	fs.Var(&wheres, "where", "filter 'col OP value' with OP in == != < <= > >= (repeatable)")
	asCSV := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("query: -store is required")
	}
	st, err := results.Open(*dir, nil)
	if err != nil {
		return err
	}
	q := results.Query{}
	if *groupBy != "" {
		q.GroupBy = strings.Split(*groupBy, ",")
	}
	for _, part := range strings.Split(*aggSpec, ",") {
		op, col, found := strings.Cut(part, ":")
		if !found && op != "count" {
			return fmt.Errorf("query: aggregate %q needs a column (op:col)", part)
		}
		q.Aggs = append(q.Aggs, results.Agg{Op: op, Col: col})
	}
	for _, w := range wheres {
		f, err := parseWhere(st.Schema(), w)
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, f)
	}
	res, err := st.RunQuery(q)
	if err != nil {
		return err
	}
	t := metrics.NewTable("", res.Headers...)
	for _, row := range res.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			switch v.Kind {
			case results.Int64:
				cells[i] = v.Int
			case results.Float64:
				cells[i] = v.F
			default:
				cells[i] = v.Str
			}
		}
		t.AddRow(cells...)
	}
	if *asCSV {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.Render())
	}
	return nil
}

// parseWhere splits 'col OP value', typing the value by the column's
// schema kind.
func parseWhere(schema results.Schema, s string) (results.Filter, error) {
	for _, op := range []string{"<=", ">=", "==", "!=", "<", ">"} {
		col, val, found := strings.Cut(s, op)
		if !found {
			continue
		}
		col, val = strings.TrimSpace(col), strings.TrimSpace(val)
		cmp, err := results.ParseCmpOp(op)
		if err != nil {
			return results.Filter{}, err
		}
		ci := schema.Col(col)
		if ci < 0 {
			return results.Filter{}, fmt.Errorf("query: filter column %q not in schema", col)
		}
		f := results.Filter{Col: col, Op: cmp}
		switch schema[ci].Kind {
		case results.Int64:
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return results.Filter{}, fmt.Errorf("query: %q is not an integer for column %s", val, col)
			}
			f.Val = results.IntVal(n)
		case results.Float64:
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return results.Filter{}, fmt.Errorf("query: %q is not a number for column %s", val, col)
			}
			f.Val = results.FloatVal(x)
		default:
			f.Val = results.StrVal(val)
		}
		return f, nil
	}
	return results.Filter{}, fmt.Errorf("query: filter %q has no comparison operator", s)
}

type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}
