// Package clean contains only deterministic, allocation-honest code;
// potlint must report nothing here.
package clean

import "sort"

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
