// Package checkpoint seeds the PR-10 structural bug classes in a
// durable package: a struct field absent from its Snapshot/Restore
// pair, a raw os.WriteFile, and a package-level write inside a
// //potlint:shardsafe function. Each must fail make lint.
package checkpoint

import "os"

type Store struct {
	cursor int
	dirty  bool // seeded: absent from both Snapshot and Restore
}

// StoreState is the serialized form.
type StoreState struct{ Cursor int }

func (s *Store) Snapshot() StoreState  { return StoreState{Cursor: s.cursor} }
func (s *Store) Restore(st StoreState) { s.cursor = st.Cursor }

// Save is the seeded non-atomic write: a crash mid-write leaves a
// half-written checkpoint.
func Save(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

var advances int

// Advance is the seeded shard violation: the counter is package-level
// state, written from what claims to be a shard-safe kernel.
//
//potlint:shardsafe
func Advance(vals []float64, from, to int) {
	for i := from; i < to; i++ {
		vals[i] *= 0.5
		advances++
	}
}
