// Package service seeds the PR-10 goroutine-lifecycle bug: a daemon
// worker with no termination path, launched in a package whose
// goroutines must obey the drain lifecycle.
package service

type daemon struct {
	jobs []int
}

func (d *daemon) start() {
	go func() { // seeded: nothing can ever stop this worker
		for {
			d.jobs = append(d.jobs, len(d.jobs))
		}
	}()
}
