// Package core reproduces, in miniature, the two determinism bugs the
// lint suite exists to catch — the PR-2 flit-injection map range and a
// wall-clock read in the epoch loop — plus a discarded snapshot error.
package core

import "time"

type Task struct {
	CommFlits map[int]int
}

type Engine struct {
	started  time.Time
	injected []int
}

func (e *Engine) inject(dst, flits int) { e.injected = append(e.injected, dst) }

func (e *Engine) Snapshot() ([]byte, error) { return nil, nil }

// FireFirstIteration is the PR-2 bug shape: packets enter the NoC in
// map-iteration order, so identical seeds drift router arbitration.
func (e *Engine) FireFirstIteration(t *Task) {
	for dst, flits := range t.CommFlits {
		e.inject(dst, flits)
	}
}

// StartEpoch reads the host clock inside a simulation package.
func (e *Engine) StartEpoch() {
	e.started = time.Now()
}

// Checkpoint drops the snapshot error on the floor.
func (e *Engine) Checkpoint() []byte {
	b, _ := e.Snapshot()
	return b
}
