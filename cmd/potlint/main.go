// Command potlint runs potsim's custom determinism/hot-path/durability
// analyzers (internal/lint) over Go packages.
//
// Standalone (loads packages itself via the go tool, no network):
//
//	potlint ./...
//	potlint -checks maporder,wallclock ./internal/...
//	potlint -json ./... > findings.json
//
// As a go vet tool (unitchecker protocol: go vet hands the tool a JSON
// .cfg per compilation unit, including test packages):
//
//	go vet -vettool=$(which potlint) ./...
//
// Exit status: 0 clean, 1 findings or usage error (standalone),
// 2 findings (vet mode, matching go vet's convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"potsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("potlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks    = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		sarifOut  = fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 on stdout (for CI annotations)")
		listOnly  = fs.Bool("analyzers", false, "list analyzers and exit")
		dir       = fs.String("C", "", "change to this directory before loading packages")
		versionFl = fs.String("V", "", "internal: version protocol for cmd/go (use -V=full)")
		flagsFl   = fs.Bool("flags", false, "internal: describe flags as JSON for cmd/go")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *flagsFl {
		// cmd/go probes vet tools with -flags for the set of vet flags
		// they accept; potlint exposes none of go vet's own flags.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *versionFl != "" {
		// cmd/go invokes vet tools with -V=full and caches on the
		// printed line; hash the binary so rebuilt tools bust the cache.
		return printVersion(stdout, *versionFl, stderr)
	}
	if *listOnly {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], analyzers, stderr)
	}

	pkgs, err := lint.Load(*dir, rest...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	switch {
	case *sarifOut:
		root := *dir
		if root == "" {
			root, _ = os.Getwd()
		}
		if abs, err := filepath.Abs(root); err == nil {
			root = abs
		}
		if err := writeSARIF(stdout, diags, root); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "potlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake cmd/go requires of vet
// tools: one line, "<name> version <id>", used as the tool's cache key.
func printVersion(stdout io.Writer, mode string, stderr io.Writer) int {
	if mode != "full" {
		fmt.Fprintf(stderr, "potlint: unsupported -V mode %q\n", mode)
		return 1
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%s\n", filepath.Base(os.Args[0]), id)
	return 0
}
