package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"potsim/internal/lint"
)

// runPotlint invokes run() as the CLI would, capturing both streams.
func runPotlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixtureFindings is the acceptance check from the issue: seeding
// the PR-2 flit bug (map-order injection in FireFirstIteration) or a
// time.Now() into internal/core makes potlint fail. The fixture module
// carries both, plus a discarded Snapshot error.
func TestFixtureFindings(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-C", "testdata/fixture", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	for _, wanted := range []string{
		"core.go",
		"map iteration order is randomized",
		"time.Now reads the host clock",
		"error from Engine.Snapshot is assigned to _",
		"field Store.dirty is not referenced by Snapshot or Restore",
		"os.WriteFile in durable package checkpoint is not crash-atomic",
		"Advance is //potlint:shardsafe but writes package-level state advances",
		"goroutine has no visible termination path",
	} {
		if !strings.Contains(stdout, wanted) {
			t.Errorf("stdout missing %q:\n%s", wanted, stdout)
		}
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr)
	}
	if strings.Contains(stdout, "clean.go") {
		t.Errorf("the clean package must not be flagged:\n%s", stdout)
	}
}

func TestFixtureJSON(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-C", "testdata/fixture", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	analyzers := map[string]bool{}
	for _, d := range diags {
		analyzers[d.Analyzer] = true
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
	for _, a := range []string{"maporder", "wallclock", "snaperr", "snapfields", "atomicwrite", "shardsafe", "goroleak"} {
		if !analyzers[a] {
			t.Errorf("expected a %s finding in %v", a, diags)
		}
	}
}

// TestFixtureSARIF checks the -sarif mode end to end: a valid SARIF
// 2.1.0 log with one rule per analyzer, repo-relative URIs, and one
// result per finding (exit stays 1 so CI still fails the job).
func TestFixtureSARIF(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-C", "testdata/fixture", "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one 2.1.0 run, got version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "potlint" {
		t.Errorf("driver name = %q, want potlint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(lint.All()); got != want {
		t.Errorf("rules = %d, want one per analyzer (%d)", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a fixture full of seeded bugs")
	}
	byRule := map[string]bool{}
	for _, r := range run.Results {
		byRule[r.RuleID] = true
		if r.Level != "error" {
			t.Errorf("result level = %q, want error", r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine == 0 || loc.ArtifactLocation.URI == "" {
			t.Errorf("result missing location: %+v", r)
		}
		if filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("URI %q should be repo-relative for CI annotations", loc.ArtifactLocation.URI)
		}
	}
	for _, a := range []string{"maporder", "atomicwrite", "snapfields", "shardsafe", "goroleak"} {
		if !byRule[a] {
			t.Errorf("expected a %s result in the SARIF log", a)
		}
	}
}

func TestChecksFilter(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-C", "testdata/fixture", "-checks", "wallclock", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "time.Now") {
		t.Errorf("wallclock finding missing:\n%s", stdout)
	}
	if strings.Contains(stdout, "map iteration order") {
		t.Errorf("-checks wallclock must filter out maporder:\n%s", stdout)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-C", "testdata/fixture", "./internal/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("clean run should print nothing, got:\n%s", stdout)
	}
}

func TestAnalyzersFlagListsSuite(t *testing.T) {
	code, stdout, _ := runPotlint(t, "-analyzers")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-analyzers output missing %s:\n%s", a.Name, stdout)
		}
	}
}

func TestUnknownCheckFails(t *testing.T) {
	code, _, stderr := runPotlint(t, "-checks", "nosuch", "./...")
	if code != 1 || !strings.Contains(stderr, "nosuch") {
		t.Fatalf("exit = %d, stderr = %q; want failure naming the bad analyzer", code, stderr)
	}
}

// TestVersionHandshake checks the -V=full line cmd/go keys its vet
// cache on: one line, "<name> version <id>".
func TestVersionHandshake(t *testing.T) {
	code, stdout, stderr := runPotlint(t, "-V=full")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !regexp.MustCompile(`^\S+ version devel buildID=[0-9a-f]+\n$`).MatchString(stdout) {
		t.Fatalf("malformed -V=full line: %q", stdout)
	}
}

// TestFlagsProbe checks the -flags probe cmd/go issues before first
// use: a JSON array (empty — potlint takes none of vet's flags).
func TestFlagsProbe(t *testing.T) {
	code, stdout, _ := runPotlint(t, "-flags")
	if code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("-flags: exit %d, stdout %q; want 0 and []", code, stdout)
	}
}

func TestVetModeBadConfig(t *testing.T) {
	code, _, stderr := runPotlint(t, filepath.Join(t.TempDir(), "missing.cfg"))
	if code != 1 || !strings.Contains(stderr, "potlint:") {
		t.Fatalf("missing cfg: exit %d, stderr %q; want 1 with error", code, stderr)
	}

	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runPotlint(t, bad)
	if code != 1 || !strings.Contains(stderr, "parsing") {
		t.Fatalf("bad cfg: exit %d, stderr %q; want 1 with parse error", code, stderr)
	}
}
