package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"potsim/internal/lint"
)

// vetConfig is the per-compilation-unit JSON that `go vet -vettool`
// hands the tool (the unitchecker protocol). Field names and semantics
// follow cmd/go; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one vet compilation unit described by cfgPath.
func runVet(cfgPath string, analyzers []*lint.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "potlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "potlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// potlint exports no facts, but cmd/go expects the vetx output file
	// to exist after a successful run, for this unit's dependents.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(stderr, "potlint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(stderr, "potlint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := lint.NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(stderr, "potlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// External test packages ("pkg_test [pkg.test]") hold only _test.go
	// files, which every analyzer skips; strip the vet unit decoration
	// so package gating sees the real import path.
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	pkg := &lint.Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "potlint:", err)
		return 1
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
