package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"potsim/internal/lint"
)

// SARIF 2.1.0 output: the minimal static-analysis result format GitHub
// code scanning ingests, so potlint findings surface as PR annotations.
// One run, one driver, one rule per analyzer, one result per finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders diagnostics as a SARIF 2.1.0 log. File paths are
// made repository-relative against root when possible (code scanning
// matches annotations by relative URI).
func writeSARIF(w io.Writer, diags []lint.Diagnostic, root string) error {
	var rules []sarifRule
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "potlint", InformationURI: "https://example.invalid/potsim", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
