# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test bench experiments quick-experiments examples fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every reproduction benchmark (quick mode) with allocations.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Full paper-reproduction suite (several minutes; writes results/*.csv).
experiments:
	$(GO) run ./cmd/experiments -all -parallel 4 -csv results/

quick-experiments:
	$(GO) run ./cmd/experiments -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multimedia
	$(GO) run ./examples/agingstudy
	$(GO) run ./examples/darksilicon
	$(GO) run ./examples/failstop

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
