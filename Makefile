# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test lint lint-fix-report lint-sarif bench bench-gate bench-baseline experiments quick-experiments examples fmt clean

# Benchmarks gated against bench/baseline.txt by bench-gate (and CI).
# BenchmarkResultsAppend/store is fsync-bound, so its ns/op is not in
# the relative gate; cmd/benchreport instead gates it absolutely — 0
# allocs/op ceiling and a >=10x same-capture speedup over the CSV
# ingest baseline (see the -max-allocs/-max-ns/-min-speedup defaults).
BENCH_GATE = BenchmarkSystemEpoch$$|BenchmarkNoCStep$$|BenchmarkThermalStep$$|BenchmarkSystemRun32$$|BenchmarkResultsAppend$$|BenchmarkResultsQuery$$
# Packages holding gated benchmarks (root suite + thermal kernel + result store).
BENCH_PKGS = . ./internal/thermal ./internal/results
BENCH_COUNT ?= 5
# Longer per-run benchtime damps scheduler noise so the 10% gate
# threshold measures the code, not the machine.
BENCH_TIME ?= 2s

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static analysis, dependency-light: go vet, formatting, and potsim's
# own determinism/hot-path/durability analyzers (cmd/potlint). Needs
# nothing beyond the go toolchain — no network, no installed tools.
lint:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting" >&2; exit 1; }
	$(GO) run ./cmd/potlint ./...

# Machine-readable potlint findings (empty JSON array when clean), for
# editors and review tooling.
lint-fix-report:
	$(GO) run ./cmd/potlint -json ./... > potlint-report.json; \
	status=$$?; cat potlint-report.json; exit $$status

# SARIF 2.1.0 findings for code-scanning uploads (CI feeds this to
# github/codeql-action/upload-sarif so findings annotate the PR diff).
lint-sarif:
	$(GO) run ./cmd/potlint -sarif ./... > potlint.sarif; \
	status=$$?; cat potlint.sarif; exit $$status

# Regenerate every reproduction benchmark (quick mode) with allocations,
# keeping the raw capture and a dated JSON summary (see cmd/benchreport).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./... | tee bench/latest.txt
	$(GO) run ./cmd/benchreport -out BENCH_$$(date +%Y%m%d).json bench/latest.txt

# Re-measure the gated hot-path benchmarks and fail on a >10% mean
# ns/op regression against the committed baseline.
bench-gate:
	$(GO) test -run=NONE -bench='$(BENCH_GATE)' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) $(BENCH_PKGS) | tee bench/latest-gate.txt
	$(GO) run ./cmd/benchreport -check -baseline bench/baseline.txt bench/latest-gate.txt

# Refresh the committed baseline (run on a quiet machine, then commit
# bench/baseline.txt together with the change that moved the numbers).
bench-baseline:
	$(GO) test -run=NONE -bench='$(BENCH_GATE)' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) $(BENCH_PKGS) | tee bench/baseline.txt

# Full paper-reproduction suite (several minutes; writes results/*.csv).
experiments:
	$(GO) run ./cmd/experiments -all -parallel 4 -csv results/

quick-experiments:
	$(GO) run ./cmd/experiments -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multimedia
	$(GO) run ./examples/agingstudy
	$(GO) run ./examples/darksilicon
	$(GO) run ./examples/failstop

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
