package potsim

// One benchmark per reproduced table/figure (E1..E10, see DESIGN.md).
// Each bench regenerates its experiment in quick mode and logs the table,
// so `go test -bench=. -benchmem` re-prints the rows the paper reports.
// Additional micro-benchmarks cover the hot paths of the substrates.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"potsim/internal/batch"
	"potsim/internal/core"
	"potsim/internal/expt"
	"potsim/internal/noc"
	"potsim/internal/sim"
)

// benchExperiment regenerates experiment id once per iteration. The
// runner construction and the first rendered table stay outside the
// timed region so only the regeneration itself is measured.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := &expt.Runner{Quick: true}
	res, err := runner.Run(id)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + res.Render())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ThroughputPenalty(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2PowerTrace(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3CriticalityAdaptation(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4VfCoverage(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5MappingPolicies(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Scalability(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7TechnologySweep(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8FaultDetection(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9BudgetSweep(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10Ablations(b *testing.B)            { benchExperiment(b, "E10") }

// BenchmarkSystemEpoch measures one steady-state control epoch on the
// default 8x8 setup: interval integration, invariant checks, power
// control and test scheduling, with the system built once outside the
// timed region. This is the allocation-gated hot path (0 allocs/op);
// the whole-run shape lives in BenchmarkSystemRun. The serial sub-bench
// is the historical path; shards=1 prices the shard bookkeeping with a
// degenerate plan and shards=4 the barrier fan-out — the three produce
// byte-identical simulations (shard_diff_test.go), so their ratio is
// pure overhead/speedup.
func BenchmarkSystemEpoch(b *testing.B) {
	bench := func(b *testing.B, shards int) {
		cfg := core.DefaultConfig()
		cfg.TraceEvery = 0                // retained trace rows are not epoch work
		cfg.SchedOptions.MaxTestTempK = 1 // launches allocate executions by design
		cfg.Shards = shards
		sys, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		for i := 0; i < 8; i++ {
			if err := sys.StepEpoch(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.StepEpoch(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cfg.Epoch.Seconds()*1e3*float64(b.N)/b.Elapsed().Seconds(), "sim-ms/s")
	}
	b.Run("serial", func(b *testing.B) { bench(b, 0) })
	b.Run("shards=1", func(b *testing.B) { bench(b, 1) })
	b.Run("shards=4", func(b *testing.B) { bench(b, 4) })
}

// BenchmarkSystemRun measures the full simulation rate — assembly,
// arrivals, mapping, the whole control loop — as simulated manycore
// milliseconds per wall-clock second on the default setup. This is the
// seed benchmark shape, kept for longitudinal comparison.
func BenchmarkSystemRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Horizon = 50 * sim.Millisecond
		sys, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50*float64(b.N)/b.Elapsed().Seconds(), "sim-ms/s")
}

// BenchmarkSystemRun32 is the large-mesh whole-run shape: a 1024-core
// (32x32) mesh over 50 ms of simulated time with the epoch integrators
// sharded across NumCPU workers — the configuration the <1s wall-clock
// acceptance test (core.TestLargeMeshRunUnderOneSecond) locks in.
func BenchmarkSystemRun32(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Width, cfg.Height = 32, 32
		cfg.Horizon = 50 * sim.Millisecond
		cfg.Shards = runtime.NumCPU()
		sys, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50*float64(b.N)/b.Elapsed().Seconds(), "sim-ms/s")
}

// BenchmarkNoCStep measures flit-level router cycles per second on an
// 8x8 mesh in the exact shape of the per-epoch co-simulation loop:
// inject, step, release delivered packets back to the freelist. The
// offered load (0.15 flits/node/cycle) sits below this mesh's
// saturation point so the network genuinely reaches steady state —
// at saturating loads the queues deepen without bound and no
// allocation pin can hold. Steady state is alloc-free (pinned by
// noc.TestStepSteadyStateZeroAlloc).
func BenchmarkNoCStep(b *testing.B) {
	net, err := noc.NewNetwork(noc.DefaultConfig(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := noc.NewGenerator(net, noc.Uniform,
		sim.NewRNG(1).Stream("bench"), 0.15, 4)
	if err != nil {
		b.Fatal(err)
	}
	// Warm past the transient: freelist, FIFOs and staging slices reach
	// their steady-state capacities.
	for i := 0; i < 4096; i++ {
		if err := gen.Tick(); err != nil {
			b.Fatal(err)
		}
		net.Step()
		net.ReleaseDelivered(len(net.Delivered()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gen.Tick(); err != nil {
			b.Fatal(err)
		}
		net.Step()
		net.ReleaseDelivered(len(net.Delivered()))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkPublicAPI exercises the façade the README quickstart shows.
func BenchmarkPublicAPI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Horizon = 20 * sim.Millisecond
		sys, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.TasksCompleted == 0 {
			b.Fatal("no work done")
		}
	}
}

func BenchmarkE11NoCValidation(b *testing.B) { benchExperiment(b, "E11") }

func BenchmarkE12MixedCriticality(b *testing.B) { benchExperiment(b, "E12") }

func BenchmarkE13WearLeveling(b *testing.B) { benchExperiment(b, "E13") }

func BenchmarkE14TestIntensity(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15GovernorPolicy(b *testing.B) { benchExperiment(b, "E15") }

func BenchmarkE16IntervalModel(b *testing.B) { benchExperiment(b, "E16") }

func BenchmarkE17MemoryBottleneck(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18Segmentation(b *testing.B) { benchExperiment(b, "E18") }

func BenchmarkE19LargeMesh(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkBatchRunner measures the intra-experiment worker pool on a
// real cell sweep (E5's five mappers in quick mode): workers=1 is the
// sequential baseline, workers=NumCPU the fan-out. The ratio of the two
// is the wall-clock speedup the -workers flag buys; the outputs are
// asserted identical elsewhere (expt.TestE1GoldenAcrossWorkerCounts).
func BenchmarkBatchRunner(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if counts[1] == 1 {
		counts = counts[:1] // single-CPU machine: nothing to compare
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runner := &expt.Runner{Quick: true, Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run("E5"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchMapOverhead isolates the pool's per-cell scheduling
// cost with trivial cells (no simulation), so regressions in the batch
// machinery itself are visible.
func BenchmarkBatchMapOverhead(b *testing.B) {
	ctx := context.Background()
	opts := batch.Options{Workers: runtime.NumCPU()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.Map(ctx, opts, 256,
			func(_ context.Context, j int) (int, error) { return j, nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(256*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}
